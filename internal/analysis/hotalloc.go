package analysis

import (
	"fmt"
	"go/ast"
	"go/constant"
	"go/token"
	"go/types"
)

// HotAlloc flags heap allocations in profile-hot code — the silent way to
// give back the raw-speed campaign's wins. PR 6 bought ~2.2× on the cycle
// engine partly by driving hot-path allocations to zero (machine pooling,
// SoA state, `TestPoolGetPutNoAllocs`); an accidental closure, boxed
// interface argument, or capacity-less append in that code costs real
// throughput without failing any test. The hot set comes from the
// checked-in PGO profile plus //xeonlint:hot directives (see pgo.go).
//
// Inside hot loops (including the whole body of a function called from a
// hot loop):
//
//   - string concatenation building a value per iteration (use
//     strings.Builder)
//   - fmt.Sprint/Sprintf/Sprintln/Errorf, which allocate their result
//   - capturing closures, which allocate per iteration
//   - defer, which grows the defer chain per iteration (when the defer
//     is the loop body's last statement, a -fix rewrite to a direct
//     call; elsewhere report-only, since deleting the keyword would run
//     the call before the statements that follow it)
//   - append to a slice created without a capacity hint (with a -fix
//     adding the capacity when the slice was made with length 0 and the
//     loop bound is derivable)
//   - passing a concrete non-pointer value to an interface parameter,
//     which boxes an allocation per iteration
//
// Anywhere in a profile-hot function:
//
//   - a composite literal whose address escapes through a return or a
//     field store, allocating on every call
type HotAlloc struct{}

func (*HotAlloc) Name() string { return "hotalloc" }
func (*HotAlloc) Doc() string {
	return "flag per-iteration heap allocations (closures, fmt, string concat, boxing, defer, capacity-less append) in profile-hot code"
}

func (a *HotAlloc) Check(prog *Program, pkg *Package) []Diagnostic {
	facts := prog.Facts()
	hf := facts.hotFor()
	var diags []Diagnostic
	for _, fi := range facts.PkgFuncs(pkg) {
		reason, hot := hf.hot[fi.Fn]
		if !hot {
			continue
		}
		w := &hotAllocWalker{
			a: a, prog: prog, pkg: pkg, fi: fi,
			reason:   reason,
			bodyLoop: hf.loopHot[fi.Fn],
			slices:   localSliceDecls(pkg.Info, fi.Decl.Body),
		}
		w.walk(fi.Decl.Body, nil)
		diags = append(diags, w.diags...)
	}
	return diags
}

// sliceDecl records how a function-local slice variable was created, for
// the capacity-hint check.
type sliceDecl struct {
	// makeCall is the `make([]T, 0)` expression when the variable was
	// created that way (the fixable shape); nil for `var s []T` and
	// `s := []T{}`.
	makeCall *ast.CallExpr
	hasCap   bool
}

// localSliceDecls indexes the slice variables a function creates and how:
// `var s []T`, `s := []T{}`, and `s := make([]T, len[, cap])`.
func localSliceDecls(info *types.Info, body *ast.BlockStmt) map[*types.Var]*sliceDecl {
	out := map[*types.Var]*sliceDecl{}
	record := func(def types.Object, rhs ast.Expr) {
		v, ok := def.(*types.Var)
		if !ok {
			return
		}
		if _, isSlice := v.Type().Underlying().(*types.Slice); !isSlice {
			return
		}
		// Only the creation shapes that demonstrably start with zero
		// capacity count: `var s []T`, `s := []T{}`, `s := make([]T, n)`.
		// A reslice like `s := buf[:0]` inherits pooled capacity, and an
		// arbitrary call's result is unknown — neither is a finding.
		d := &sliceDecl{}
		switch rhs := ast.Unparen(rhs).(type) {
		case nil:
		case *ast.CompositeLit:
			if len(rhs.Elts) != 0 {
				return
			}
		case *ast.CallExpr:
			id, ok := ast.Unparen(rhs.Fun).(*ast.Ident)
			if !ok || id.Name != "make" {
				return
			}
			if _, isBuiltin := info.Uses[id].(*types.Builtin); !isBuiltin {
				return
			}
			d.makeCall = rhs
			d.hasCap = len(rhs.Args) >= 3
		default:
			return
		}
		out[v] = d
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i := range n.Lhs {
				if id, ok := n.Lhs[i].(*ast.Ident); ok {
					record(info.Defs[id], n.Rhs[i])
				}
			}
		case *ast.ValueSpec:
			for i, name := range n.Names {
				var rhs ast.Expr
				if i < len(n.Values) {
					rhs = n.Values[i]
				}
				record(info.Defs[name], rhs)
			}
		}
		return true
	})
	return out
}

type hotAllocWalker struct {
	a        *HotAlloc
	prog     *Program
	pkg      *Package
	fi       *FuncInfo
	reason   string
	bodyLoop bool
	slices   map[*types.Var]*sliceDecl
	diags    []Diagnostic
}

func (w *hotAllocWalker) report(n ast.Node, fix *SuggestedFix, format string, args ...any) {
	w.diags = append(w.diags, Diagnostic{
		Pos:      w.prog.Fset.Position(n.Pos()),
		Analyzer: w.a.Name(),
		Message:  fmt.Sprintf(format, args...),
		Fix:      fix,
	})
}

// inLoop reports whether the current loop stack (plus a body that is
// itself loop context) means per-iteration execution.
func (w *hotAllocWalker) inLoop(loops []ast.Node) bool {
	return w.bodyLoop || len(loops) > 0
}

// walk traverses the body tracking the enclosing loops. Function-literal
// bodies inherit the current loop context: a literal built in a hot loop
// is (at best) called once per iteration.
func (w *hotAllocWalker) walk(n ast.Node, loops []ast.Node) {
	ast.Inspect(n, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ForStmt:
			if m.Init != nil {
				w.walk(m.Init, loops)
			}
			inner := append(loops, ast.Node(m))
			if m.Cond != nil {
				w.walk(m.Cond, inner)
			}
			if m.Post != nil {
				w.walk(m.Post, inner)
			}
			w.walk(m.Body, inner)
			return false
		case *ast.RangeStmt:
			w.walk(m.X, loops)
			w.walk(m.Body, append(loops, ast.Node(m)))
			return false
		case *ast.FuncLit:
			if w.inLoop(loops) && capturesOuter(w.pkg.Info, m) {
				w.report(m, nil,
					"closure capturing outer variables in a hot loop allocates per iteration (%s); hoist the closure or pass state explicitly", w.reason)
			}
			return true
		case *ast.DeferStmt:
			if w.inLoop(loops) {
				// Deleting the defer keyword runs the call where it was
				// queued, not at function exit — only equivalent to "end of
				// the iteration" when no statements follow in the loop body.
				// Anywhere else the rewrite would reorder effects (e.g. an
				// unlock hoisted before its critical section), so the
				// finding is report-only.
				var fix *SuggestedFix
				if trailingLoopDefer(m, loops) {
					fix = &SuggestedFix{
						Message: "call directly: as the loop body's last statement, the call runs at the same point the defer was queued",
						Edits:   []TextEdit{{Pos: m.Pos(), End: m.Call.Pos()}},
					}
				}
				what := callName(w.pkg.Info, m.Call)
				if _, isLit := ast.Unparen(m.Call.Fun).(*ast.FuncLit); isLit {
					what = "the deferred body"
				}
				w.report(m, fix,
					"defer in a hot loop grows the defer chain every iteration (%s); run %s at the end of the iteration instead",
					w.reason, what)
			}
		case *ast.AssignStmt:
			if w.inLoop(loops) {
				w.checkStringConcat(m)
			}
		case *ast.CallExpr:
			if w.inLoop(loops) {
				w.checkFmtAlloc(m)
				w.checkAppend(m, loops)
				w.checkBoxing(m)
			}
		case *ast.UnaryExpr:
			if m.Op == token.AND {
				w.checkEscapingComposite(m, n)
			}
		}
		return true
	})
}

// trailingLoopDefer reports whether d is the final statement of the
// innermost enclosing loop's body — the only defer shape where deleting
// the keyword is a safe rewrite: the call runs at the exact program
// point it would have been queued, so nothing in the iteration can be
// reordered around it.
func trailingLoopDefer(d *ast.DeferStmt, loops []ast.Node) bool {
	if len(loops) == 0 {
		return false
	}
	var body *ast.BlockStmt
	switch loop := loops[len(loops)-1].(type) {
	case *ast.ForStmt:
		body = loop.Body
	case *ast.RangeStmt:
		body = loop.Body
	}
	if body == nil || len(body.List) == 0 {
		return false
	}
	return body.List[len(body.List)-1] == ast.Stmt(d)
}

// checkStringConcat flags `s += x` and `s = s + x` on strings.
func (w *hotAllocWalker) checkStringConcat(n *ast.AssignStmt) {
	if len(n.Lhs) != 1 {
		return
	}
	lhsType := w.pkg.Info.TypeOf(n.Lhs[0])
	if lhsType == nil || !isStringType(lhsType) {
		return
	}
	switch n.Tok {
	case token.ADD_ASSIGN: // s += x
	case token.ASSIGN: // s = s + x
		bin, ok := ast.Unparen(n.Rhs[0]).(*ast.BinaryExpr)
		if !ok || bin.Op != token.ADD {
			return
		}
		lhsObj := chainObject(w.pkg.Info, n.Lhs[0])
		if lhsObj == nil || chainObject(w.pkg.Info, leftmostOperand(bin)) != lhsObj {
			return
		}
	default:
		return
	}
	w.report(n, nil,
		"string concatenation in a hot loop allocates a new string per iteration (%s); accumulate in a strings.Builder", w.reason)
}

// checkFmtAlloc flags the fmt calls that allocate their result.
func (w *hotAllocWalker) checkFmtAlloc(call *ast.CallExpr) {
	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil || fn.Pkg().Path() != "fmt" {
		return
	}
	switch fn.Name() {
	case "Sprint", "Sprintf", "Sprintln", "Errorf":
		w.report(call, nil,
			"fmt.%s in a hot loop allocates and reflects per iteration (%s); hoist it, or build with strconv.Append* into a reused buffer",
			fn.Name(), w.reason)
	}
}

// checkAppend flags appends to slices created without a capacity hint,
// attaching a make-capacity fix when the loop bound is derivable.
func (w *hotAllocWalker) checkAppend(call *ast.CallExpr, loops []ast.Node) {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok || id.Name != "append" {
		return
	}
	if _, isBuiltin := w.pkg.Info.Uses[id].(*types.Builtin); !isBuiltin {
		return
	}
	if len(call.Args) == 0 {
		return
	}
	target, ok := ast.Unparen(call.Args[0]).(*ast.Ident)
	if !ok {
		return
	}
	v, ok := w.pkg.Info.Uses[target].(*types.Var)
	if !ok {
		return
	}
	decl, ok := w.slices[v]
	if !ok || decl.hasCap {
		return
	}
	// The capacity fix only fires on the documented capacity-less shape,
	// make([]T, 0): appending a capacity to a nonzero length would leave
	// the n existing elements in front of the appends, fail to compile
	// for a constant bound below the length, and panic (cap out of
	// range) for a dynamic bound below it.
	var fix *SuggestedFix
	bound := ""
	if decl.makeCall != nil && len(decl.makeCall.Args) == 2 && isZeroConst(w.pkg.Info, decl.makeCall.Args[1]) {
		if bound = loopBound(w.pkg.Info, loops); bound != "" {
			fix = &SuggestedFix{
				Message: "preallocate: the loop bound is " + bound,
				Edits: []TextEdit{{
					Pos: decl.makeCall.Rparen, End: decl.makeCall.Rparen,
					NewText: ", " + bound,
				}},
			}
		}
	}
	if bound != "" {
		w.report(call, fix,
			"append to %s in a hot loop regrows without a capacity hint (%s); preallocate with make(..., 0, %s)",
			target.Name, w.reason, bound)
		return
	}
	w.report(call, fix,
		"append to %s in a hot loop regrows without a capacity hint (%s); size the make call or reuse a buffer",
		target.Name, w.reason)
}

// loopBound derives a textual iteration bound from the innermost
// enclosing loop: `for i := 0; i < N; i++` gives "N", `for range xs` over
// a slice/array/map/string gives "len(xs)". Returns "" when no clean
// bound exists.
func loopBound(info *types.Info, loops []ast.Node) string {
	if len(loops) == 0 {
		return ""
	}
	switch loop := loops[len(loops)-1].(type) {
	case *ast.ForStmt:
		bin, ok := ast.Unparen(loop.Cond).(*ast.BinaryExpr)
		if !ok || (bin.Op != token.LSS && bin.Op != token.LEQ) {
			return ""
		}
		if !pureBoundExpr(bin.Y) {
			return ""
		}
		b := exprString(bin.Y)
		if bin.Op == token.LEQ {
			b += "+1"
		}
		return b
	case *ast.RangeStmt:
		if !pureBoundExpr(loop.X) {
			return ""
		}
		tv, ok := info.Types[loop.X]
		if !ok || tv.Type == nil {
			return ""
		}
		switch tv.Type.Underlying().(type) {
		case *types.Slice, *types.Array, *types.Map, *types.Basic:
			return "len(" + exprString(loop.X) + ")"
		}
	}
	return ""
}

// isZeroConst reports whether e is a compile-time integer constant 0.
func isZeroConst(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	if !ok || tv.Value == nil {
		return false
	}
	v, ok := constant.Int64Val(constant.ToInt(tv.Value))
	return ok && v == 0
}

// pureBoundExpr accepts the expressions safe to duplicate into a make
// capacity: identifiers, selector chains, and integer literals.
func pureBoundExpr(e ast.Expr) bool {
	switch e := ast.Unparen(e).(type) {
	case *ast.Ident:
		return true
	case *ast.BasicLit:
		return e.Kind == token.INT
	case *ast.SelectorExpr:
		return pureBoundExpr(e.X)
	}
	return false
}

// checkBoxing flags concrete non-pointer values passed to interface
// parameters — each such call boxes the value into a fresh allocation
// (pointer-shaped values are stored inline in the interface word).
func (w *hotAllocWalker) checkBoxing(call *ast.CallExpr) {
	fn := calleeFunc(w.pkg.Info, call)
	if fn == nil || fn.Pkg() == nil {
		return
	}
	// fmt is flagged wholesale by checkFmtAlloc; double reporting the
	// variadic ...any boxing would be noise.
	if fn.Pkg().Path() == "fmt" {
		return
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return
	}
	for i, arg := range call.Args {
		pi := i
		if sig.Variadic() && pi >= sig.Params().Len()-1 {
			pi = sig.Params().Len() - 1
		}
		if pi >= sig.Params().Len() {
			break
		}
		param := sig.Params().At(pi)
		pt := param.Type()
		if sig.Variadic() && pi == sig.Params().Len()-1 && !call.Ellipsis.IsValid() {
			if sl, ok := pt.(*types.Slice); ok {
				pt = sl.Elem()
			}
		}
		iface, isIface := pt.Underlying().(*types.Interface)
		if !isIface || isErrorType(pt) {
			continue
		}
		_ = iface
		tv, ok := w.pkg.Info.Types[arg]
		if !ok || tv.Type == nil || tv.IsNil() {
			continue
		}
		at := tv.Type
		if !boxesOnConversion(at) {
			continue
		}
		w.report(arg, nil,
			"passing %s by value to interface parameter %q of %s boxes an allocation per iteration (%s); pass a pointer or use a concrete parameter type",
			types.TypeString(at, types.RelativeTo(w.pkg.Types)), param.Name(), shortFuncName(fn), w.reason)
	}
}

// boxesOnConversion reports whether converting a value of type t to an
// interface heap-allocates: true for multi-word and non-pointer-shaped
// types (structs, arrays, strings, slices, sizable basics), false for
// pointers, channels, maps, funcs, unsafe pointers, and interfaces.
func boxesOnConversion(t types.Type) bool {
	switch u := t.Underlying().(type) {
	case *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.Interface:
		return false
	case *types.Basic:
		return u.Kind() != types.UnsafePointer
	default:
		return true
	}
}

// checkEscapingComposite flags `&T{...}` literals that escape the hot
// function through a return statement or a field store.
func (w *hotAllocWalker) checkEscapingComposite(n *ast.UnaryExpr, root ast.Node) {
	lit, ok := ast.Unparen(n.X).(*ast.CompositeLit)
	if !ok || lit.Type == nil {
		return
	}
	escapes := false
	ast.Inspect(root, func(m ast.Node) bool {
		switch m := m.(type) {
		case *ast.ReturnStmt:
			for _, r := range m.Results {
				if containsNode(r, n) {
					escapes = true
				}
			}
		case *ast.AssignStmt:
			for i, r := range m.Rhs {
				if !containsNode(r, n) || i >= len(m.Lhs) {
					continue
				}
				if _, isSel := ast.Unparen(m.Lhs[i]).(*ast.SelectorExpr); isSel {
					escapes = true
				}
			}
		}
		return !escapes
	})
	if !escapes {
		return
	}
	w.report(n, nil,
		"&%s{...} escapes hot function %s and allocates on every call (%s); reuse a pooled or caller-provided value",
		exprString(lit.Type), shortFuncName(w.fi.Fn), w.reason)
}

// containsNode reports whether target is within the subtree rooted at n.
func containsNode(n ast.Node, target ast.Node) bool {
	return n.Pos() <= target.Pos() && target.End() <= n.End()
}

// capturesOuter reports whether a function literal references variables
// declared outside itself but inside some function — the captures that
// force the closure (and captured values) to heap-allocate.
func capturesOuter(info *types.Info, lit *ast.FuncLit) bool {
	captured := false
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		id, ok := n.(*ast.Ident)
		if !ok || captured {
			return !captured
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() {
			return true
		}
		// Package-level variables are not captured; anything declared
		// before the literal but used inside it is.
		if v.Pkg() != nil && v.Parent() == v.Pkg().Scope() {
			return true
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = true
		}
		return true
	})
	return captured
}

// leftmostOperand descends the left spine of a binary expression.
func leftmostOperand(e ast.Expr) ast.Expr {
	for {
		bin, ok := ast.Unparen(e).(*ast.BinaryExpr)
		if !ok {
			return ast.Unparen(e)
		}
		e = bin.X
	}
}

// isStringType reports whether t's underlying type is string.
func isStringType(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}
