package analysis

import (
	"bytes"
	"compress/gzip"
	"fmt"
	"go/ast"
	"go/types"
	"io"
	"os"
	"sort"
	"strings"
)

// This file is the profile-guided fact layer: a standard-library-only
// reader for pprof CPU profiles (the gzipped protobuf format `go test
// -cpuprofile` and `xeonchar -cpuprofile` emit, and the compiler reads
// for PGO), plus the hot-set extraction the hotalloc/hotcall/benchparity
// analyzers key on. The repo already ships the knowledge of where the
// simulator spends its time as cmd/xeonchar/default.pgo; decoding it here
// turns that checked-in profile into a lint oracle — the performance
// analyzers are strict exactly where the profiler says strictness pays.
//
// Only the subset of profile.proto the hot-set computation needs is
// decoded: the sample/location/function tables, the string table, and the
// sample_type column descriptors. Mappings, labels, and line numbers are
// skipped. Unknown fields are ignored (forward-compatible), but a
// structurally broken profile — truncated varint, bad length, tables
// referencing missing entries — is a loud error, never a panic.

// PGOValueType describes one sample value column ("cpu"/"nanoseconds").
type PGOValueType struct {
	Type string
	Unit string
}

// PGOProfile is a decoded pprof profile reduced to per-function weights.
type PGOProfile struct {
	// SampleTypes describes the value columns; ValueIndex is the column
	// the weights below were taken from (the "cpu" column when present,
	// else the last column, matching `go tool pprof` defaults).
	SampleTypes []PGOValueType
	ValueIndex  int
	// Total is the sum of the chosen value over all samples.
	Total int64
	// DurationNs is the profile's wall-clock duration, when recorded.
	DurationNs int64
	// Flat and Cum hold per-function weights keyed by the fully qualified
	// pprof function name ("xeonomp/internal/cpu.(*Core).Step"). Flat
	// charges the leaf frame of each sample (including the innermost
	// inlined frame); Cum charges every function on the sample's stack,
	// deduplicated per sample so recursion is not double-counted.
	Flat map[string]int64
	Cum  map[string]int64
}

// FlatShare returns the flat fraction of Total attributed to name.
func (p *PGOProfile) FlatShare(name string) float64 { return p.share(p.Flat[name]) }

// CumShare returns the cumulative fraction of Total attributed to name.
func (p *PGOProfile) CumShare(name string) float64 { return p.share(p.Cum[name]) }

func (p *PGOProfile) share(v int64) float64 {
	if p.Total <= 0 {
		return 0
	}
	return float64(v) / float64(p.Total)
}

// ReadPGO reads and decodes a pprof profile file.
func ReadPGO(path string) (*PGOProfile, error) {
	b, err := os.ReadFile(path)
	if err != nil {
		return nil, fmt.Errorf("analysis: reading profile: %w", err)
	}
	p, err := ParsePGO(b)
	if err != nil {
		return nil, fmt.Errorf("analysis: %s: %w", path, err)
	}
	return p, nil
}

// ParsePGO decodes a pprof profile from its serialized bytes, gzipped or
// raw.
func ParsePGO(data []byte) (*PGOProfile, error) {
	if len(data) >= 2 && data[0] == 0x1f && data[1] == 0x8b {
		zr, err := gzip.NewReader(bytes.NewReader(data))
		if err != nil {
			return nil, fmt.Errorf("malformed profile: %w", err)
		}
		data, err = io.ReadAll(zr)
		if err != nil {
			return nil, fmt.Errorf("malformed profile: %w", err)
		}
	}
	return parseProfileMessage(data)
}

// protoReader is a minimal protobuf wire-format cursor.
type protoReader struct {
	b   []byte
	off int
}

func (r *protoReader) done() bool { return r.off >= len(r.b) }

func (r *protoReader) varint() (uint64, error) {
	var v uint64
	for shift := uint(0); shift < 64; shift += 7 {
		if r.off >= len(r.b) {
			return 0, fmt.Errorf("truncated varint at offset %d", r.off)
		}
		b := r.b[r.off]
		r.off++
		v |= uint64(b&0x7f) << shift
		if b&0x80 == 0 {
			return v, nil
		}
	}
	return 0, fmt.Errorf("varint overflow at offset %d", r.off)
}

// tag reads a field tag, returning the field number and wire type.
func (r *protoReader) tag() (int, int, error) {
	v, err := r.varint()
	if err != nil {
		return 0, 0, err
	}
	return int(v >> 3), int(v & 7), nil
}

// bytes reads a length-delimited field body.
func (r *protoReader) bytes() ([]byte, error) {
	n, err := r.varint()
	if err != nil {
		return nil, err
	}
	if n > uint64(len(r.b)-r.off) {
		return nil, fmt.Errorf("length %d exceeds remaining %d bytes", n, len(r.b)-r.off)
	}
	out := r.b[r.off : r.off+int(n)]
	r.off += int(n)
	return out, nil
}

// skip discards one field body of the given wire type.
func (r *protoReader) skip(wire int) error {
	switch wire {
	case 0: // varint
		_, err := r.varint()
		return err
	case 1: // fixed64
		if len(r.b)-r.off < 8 {
			return fmt.Errorf("truncated fixed64 at offset %d", r.off)
		}
		r.off += 8
		return nil
	case 2: // length-delimited
		_, err := r.bytes()
		return err
	case 5: // fixed32
		if len(r.b)-r.off < 4 {
			return fmt.Errorf("truncated fixed32 at offset %d", r.off)
		}
		r.off += 4
		return nil
	default:
		return fmt.Errorf("unsupported wire type %d at offset %d", wire, r.off)
	}
}

// repeatedUvarints decodes a repeated varint field that may arrive packed
// (wire type 2) or one scalar at a time (wire type 0).
func repeatedUvarints(dst []uint64, wire int, r *protoReader) ([]uint64, error) {
	if wire == 0 {
		v, err := r.varint()
		if err != nil {
			return nil, err
		}
		return append(dst, v), nil
	}
	body, err := r.bytes()
	if err != nil {
		return nil, err
	}
	pr := &protoReader{b: body}
	for !pr.done() {
		v, err := pr.varint()
		if err != nil {
			return nil, err
		}
		dst = append(dst, v)
	}
	return dst, nil
}

// pgoSample, pgoLocation, pgoValueType are the intermediate decoded rows.
type pgoSample struct {
	locs []uint64
	vals []int64
}

type pgoValueTypeIdx struct{ typ, unit uint64 }

// parseProfileMessage decodes the top-level Profile message.
func parseProfileMessage(data []byte) (*PGOProfile, error) {
	r := &protoReader{b: data}
	var (
		strtab     []string
		samples    []pgoSample
		typeIdx    []pgoValueTypeIdx
		funcName   = map[uint64]uint64{}   // function id -> name string index
		locFuncs   = map[uint64][]uint64{} // location id -> function ids, innermost first
		durationNs int64
	)
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return nil, fmt.Errorf("malformed profile: %w", err)
		}
		switch field {
		case 1: // sample_type: ValueType
			body, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("malformed sample_type: %w", err)
			}
			vt, err := parseValueType(body)
			if err != nil {
				return nil, err
			}
			typeIdx = append(typeIdx, vt)
		case 2: // sample
			body, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("malformed sample: %w", err)
			}
			s, err := parseSample(body)
			if err != nil {
				return nil, err
			}
			samples = append(samples, s)
		case 4: // location
			body, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("malformed location: %w", err)
			}
			id, fns, err := parseLocation(body)
			if err != nil {
				return nil, err
			}
			locFuncs[id] = fns
		case 5: // function
			body, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("malformed function: %w", err)
			}
			id, name, err := parseFunction(body)
			if err != nil {
				return nil, err
			}
			funcName[id] = name
		case 6: // string_table
			body, err := r.bytes()
			if err != nil {
				return nil, fmt.Errorf("malformed string table: %w", err)
			}
			strtab = append(strtab, string(body))
		case 10: // duration_nanos
			v, err := r.varint()
			if err != nil {
				return nil, fmt.Errorf("malformed duration: %w", err)
			}
			durationNs = int64(v)
		default:
			if err := r.skip(wire); err != nil {
				return nil, fmt.Errorf("malformed profile field %d: %w", field, err)
			}
		}
	}

	str := func(idx uint64) (string, error) {
		if idx >= uint64(len(strtab)) {
			return "", fmt.Errorf("malformed profile: string index %d out of range (table has %d)", idx, len(strtab))
		}
		return strtab[idx], nil
	}

	p := &PGOProfile{
		DurationNs: durationNs,
		Flat:       map[string]int64{},
		Cum:        map[string]int64{},
	}
	for _, vt := range typeIdx {
		t, err := str(vt.typ)
		if err != nil {
			return nil, err
		}
		u, err := str(vt.unit)
		if err != nil {
			return nil, err
		}
		p.SampleTypes = append(p.SampleTypes, PGOValueType{Type: t, Unit: u})
	}

	// Value column: the "cpu" column when present, else the last one —
	// the same default `go tool pprof` applies to CPU profiles, whose
	// columns are [samples/count, cpu/nanoseconds].
	p.ValueIndex = len(p.SampleTypes) - 1
	for i, vt := range p.SampleTypes {
		if vt.Type == "cpu" {
			p.ValueIndex = i
			break
		}
	}
	if p.ValueIndex < 0 {
		p.ValueIndex = 0
	}

	for _, s := range samples {
		if len(s.vals) == 0 {
			continue
		}
		vi := p.ValueIndex
		if vi >= len(s.vals) {
			vi = len(s.vals) - 1
		}
		v := s.vals[vi]
		p.Total += v

		// Flat: the innermost frame of the first location. Cum: every
		// function on the stack, once per sample.
		seen := map[string]bool{}
		for i, loc := range s.locs {
			fns, ok := locFuncs[loc]
			if !ok {
				return nil, fmt.Errorf("malformed profile: sample references unknown location %d", loc)
			}
			for j, fid := range fns {
				nameIdx, ok := funcName[fid]
				if !ok {
					return nil, fmt.Errorf("malformed profile: location %d references unknown function %d", loc, fid)
				}
				name, err := str(nameIdx)
				if err != nil {
					return nil, err
				}
				if i == 0 && j == 0 {
					p.Flat[name] += v
				}
				if !seen[name] {
					seen[name] = true
					p.Cum[name] += v
				}
			}
		}
	}
	return p, nil
}

func parseValueType(body []byte) (pgoValueTypeIdx, error) {
	var vt pgoValueTypeIdx
	r := &protoReader{b: body}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return vt, fmt.Errorf("malformed value type: %w", err)
		}
		switch field {
		case 1:
			if vt.typ, err = r.varint(); err != nil {
				return vt, fmt.Errorf("malformed value type: %w", err)
			}
		case 2:
			if vt.unit, err = r.varint(); err != nil {
				return vt, fmt.Errorf("malformed value type: %w", err)
			}
		default:
			if err := r.skip(wire); err != nil {
				return vt, fmt.Errorf("malformed value type: %w", err)
			}
		}
	}
	return vt, nil
}

func parseSample(body []byte) (pgoSample, error) {
	var s pgoSample
	r := &protoReader{b: body}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return s, fmt.Errorf("malformed sample: %w", err)
		}
		switch field {
		case 1: // location_id
			if s.locs, err = repeatedUvarints(s.locs, wire, r); err != nil {
				return s, fmt.Errorf("malformed sample locations: %w", err)
			}
		case 2: // value
			var vals []uint64
			if vals, err = repeatedUvarints(nil, wire, r); err != nil {
				return s, fmt.Errorf("malformed sample values: %w", err)
			}
			for _, v := range vals {
				s.vals = append(s.vals, int64(v))
			}
		default:
			if err := r.skip(wire); err != nil {
				return s, fmt.Errorf("malformed sample: %w", err)
			}
		}
	}
	return s, nil
}

// parseLocation returns the location id and its function ids, innermost
// (leaf of the inlined stack) first — profile.proto orders Line entries
// that way, with the last entry being the caller the others were inlined
// into.
func parseLocation(body []byte) (uint64, []uint64, error) {
	var id uint64
	var fns []uint64
	r := &protoReader{b: body}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return 0, nil, fmt.Errorf("malformed location: %w", err)
		}
		switch field {
		case 1:
			if id, err = r.varint(); err != nil {
				return 0, nil, fmt.Errorf("malformed location id: %w", err)
			}
		case 4: // line
			lineBody, err := r.bytes()
			if err != nil {
				return 0, nil, fmt.Errorf("malformed line: %w", err)
			}
			lr := &protoReader{b: lineBody}
			for !lr.done() {
				lf, lw, err := lr.tag()
				if err != nil {
					return 0, nil, fmt.Errorf("malformed line: %w", err)
				}
				if lf == 1 && lw == 0 {
					fid, err := lr.varint()
					if err != nil {
						return 0, nil, fmt.Errorf("malformed line function id: %w", err)
					}
					fns = append(fns, fid)
					continue
				}
				if err := lr.skip(lw); err != nil {
					return 0, nil, fmt.Errorf("malformed line: %w", err)
				}
			}
		default:
			if err := r.skip(wire); err != nil {
				return 0, nil, fmt.Errorf("malformed location: %w", err)
			}
		}
	}
	return id, fns, nil
}

func parseFunction(body []byte) (id, name uint64, err error) {
	r := &protoReader{b: body}
	for !r.done() {
		field, wire, err := r.tag()
		if err != nil {
			return 0, 0, fmt.Errorf("malformed function: %w", err)
		}
		switch field {
		case 1:
			if id, err = r.varint(); err != nil {
				return 0, 0, fmt.Errorf("malformed function id: %w", err)
			}
		case 2:
			if name, err = r.varint(); err != nil {
				return 0, 0, fmt.Errorf("malformed function name: %w", err)
			}
		default:
			if err := r.skip(wire); err != nil {
				return 0, 0, fmt.Errorf("malformed function: %w", err)
			}
		}
	}
	return id, name, nil
}

// ---------------------------------------------------------------------
// Hot-set extraction over the module call graph.

// DefaultHotThreshold is the flat-share cutoff applied when the Program
// does not set one: a function holding at least 1% of the profile's
// samples is hot.
const DefaultHotThreshold = 0.01

// hotDirective is the comment that forces a function into the hot set
// without profile evidence, written in the function's doc comment:
//
//	//xeonlint:hot <optional reason>
const hotDirective = "//xeonlint:hot"

// HotFunc is one member of the hot set, for reports and tests.
type HotFunc struct {
	Fn   *types.Func
	Name string // pprof-style qualified name
	// Flat and Cum are the function's shares of the profile total
	// (closure samples folded into the enclosing function); zero for
	// directive-only members.
	Flat, Cum float64
	// Reason explains membership: profile share, //xeonlint:hot, or the
	// hot loop that calls it.
	Reason string
}

// hotFacts is the solved hot set: the analyzers' shared view of where the
// profiler says the module spends its time.
type hotFacts struct {
	threshold float64
	// stats carries profile shares for every module function the profile
	// resolved onto, hot or not.
	stats map[*types.Func]*hotStat
	// hot is the hot set with the reason each member joined.
	hot map[*types.Func]string
	// loopHot marks functions that are hot because a hot loop calls
	// them: their whole body executes per iteration, so the analyzers
	// treat every statement in them as loop-level.
	loopHot map[*types.Func]bool
	// unresolved lists module-prefixed profile names that did not map to
	// a declared function — the staleness signal the freshness gate and
	// -hot-report surface.
	unresolved []string
}

type hotStat struct{ flat, cum float64 }

// hotFor solves the hot set once per Program: resolve profile names onto
// declared functions (folding closures into their enclosing function),
// seed from the flat-share threshold and //xeonlint:hot directives, then
// propagate through calls made inside hot loops.
func (f *Facts) hotFor() *hotFacts {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.hotf != nil {
		return f.hotf
	}
	p := f.prog
	hf := &hotFacts{
		threshold: p.HotThreshold,
		stats:     map[*types.Func]*hotStat{},
		hot:       map[*types.Func]string{},
		loopHot:   map[*types.Func]bool{},
	}
	if hf.threshold == 0 {
		hf.threshold = DefaultHotThreshold
	}

	// Resolve profile weights onto declared functions.
	if prof := p.PGO; prof != nil && prof.Total > 0 {
		byName := map[string]*types.Func{}
		for _, fi := range f.Funcs {
			byName[pprofName(fi.Fn)] = fi.Fn
		}
		names := make([]string, 0, len(prof.Cum))
		for name := range prof.Cum {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			fn, ok := byName[stripClosureSuffix(name)]
			if !ok {
				if p.moduleProfileName(name) {
					hf.unresolved = append(hf.unresolved, name)
				}
				continue
			}
			st := hf.stats[fn]
			if st == nil {
				st = &hotStat{}
				hf.stats[fn] = st
			}
			st.flat += prof.FlatShare(name)
			st.cum += prof.CumShare(name)
		}
		for _, fi := range f.Funcs {
			st := hf.stats[fi.Fn]
			if st != nil && st.flat >= hf.threshold {
				hf.hot[fi.Fn] = fmt.Sprintf("%.1f%% flat in profile", st.flat*100)
			}
		}
	}

	// //xeonlint:hot directives extend the set without profile evidence.
	for _, fi := range f.Funcs {
		if fi.Decl.Doc == nil {
			continue
		}
		for _, c := range fi.Decl.Doc.List {
			if c.Text == hotDirective || strings.HasPrefix(c.Text, hotDirective+" ") {
				if _, ok := hf.hot[fi.Fn]; !ok {
					hf.hot[fi.Fn] = "marked " + hotDirective
				}
			}
		}
	}

	// Propagate along hot-loop calls: a module function called from
	// inside a loop of a hot function runs per iteration, so it is hot
	// too, and its whole body counts as loop context. Fixpoint over the
	// call sites, since the propagated functions have loops of their own.
	work := make([]*types.Func, 0, len(hf.hot))
	for fn := range hf.hot {
		work = append(work, fn)
	}
	sort.Slice(work, func(i, j int) bool { return pprofName(work[i]) < pprofName(work[j]) })
	for len(work) > 0 {
		fn := work[0]
		work = work[1:]
		fi := f.FuncOf[fn]
		if fi == nil {
			continue
		}
		for _, callee := range loopCallees(fi, hf.loopHot[fn]) {
			if f.FuncOf[callee] == nil {
				continue
			}
			if _, ok := hf.hot[callee]; ok {
				if !hf.loopHot[callee] {
					// Already hot on its own evidence; no body-wide loop
					// context, but nothing more to propagate either.
				}
				continue
			}
			hf.hot[callee] = "called in a hot loop of " + shortFuncName(fn)
			hf.loopHot[callee] = true
			work = append(work, callee)
		}
	}

	f.hotf = hf
	return hf
}

// loopCallees returns the static callees of fi that are invoked inside a
// loop (or anywhere, when the whole body is loop context), in source
// order.
func loopCallees(fi *FuncInfo, bodyIsLoop bool) []*types.Func {
	var out []*types.Func
	seen := map[*types.Func]bool{}
	var walk func(n ast.Node, depth int)
	walk = func(n ast.Node, depth int) {
		ast.Inspect(n, func(m ast.Node) bool {
			switch m := m.(type) {
			case *ast.ForStmt:
				if m.Body != nil {
					walk(m.Body, depth+1)
				}
				// Init/Cond/Post run at loop frequency too, but once per
				// iteration check; treat them as loop context as well.
				if m.Cond != nil {
					walk(m.Cond, depth+1)
				}
				if m.Post != nil {
					walk(m.Post, depth+1)
				}
				return false
			case *ast.RangeStmt:
				if m.Body != nil {
					walk(m.Body, depth+1)
				}
				return false
			case *ast.CallExpr:
				if depth == 0 {
					return true
				}
				if callee := calleeFunc(fi.Pkg.Info, m); callee != nil && !seen[callee] {
					seen[callee] = true
					out = append(out, callee)
				}
			}
			return true
		})
	}
	start := 0
	if bodyIsLoop {
		start = 1
	}
	walk(fi.Decl.Body, start)
	return out
}

// HotFunctions returns the solved hot set sorted by descending flat
// share, ties broken by name — the -hot-report and freshness-gate view.
func (p *Program) HotFunctions() []HotFunc {
	hf := p.Facts().hotFor()
	out := make([]HotFunc, 0, len(hf.hot))
	for fn, reason := range hf.hot {
		h := HotFunc{Fn: fn, Name: pprofName(fn), Reason: reason}
		if st := hf.stats[fn]; st != nil {
			h.Flat, h.Cum = st.flat, st.cum
		}
		out = append(out, h)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Flat != out[j].Flat {
			return out[i].Flat > out[j].Flat
		}
		return out[i].Name < out[j].Name
	})
	return out
}

// UnresolvedHotNames returns profile function names under the module path
// that did not resolve to any declared function — non-empty means the
// checked-in profile has drifted from the source.
func (p *Program) UnresolvedHotNames() []string {
	return p.Facts().hotFor().unresolved
}

// moduleProfileName reports whether a pprof function name belongs to the
// loaded module: "<modulepath>.Func" for the root package, or
// "<modulepath>/sub/pkg.Func" for any subpackage. The module path comes
// from go.mod via the loader, so a host-rooted path like
// github.com/org/repo never claims unrelated dependencies' frames that
// merely share the host segment.
func (p *Program) moduleProfileName(name string) bool {
	mp := p.ModulePath
	if mp == "" {
		return false
	}
	return strings.HasPrefix(name, mp+".") || strings.HasPrefix(name, mp+"/")
}

// pprofName renders a declared function the way pprof spells it:
// "pkg/path.Func", "pkg/path.(*Recv).Method", "pkg/path.Recv.Method".
func pprofName(fn *types.Func) string {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return pkg + "." + fn.Name()
	}
	t := sig.Recv().Type()
	if ptr, isPtr := t.(*types.Pointer); isPtr {
		if named, ok := ptr.Elem().(*types.Named); ok {
			return pkg + ".(*" + named.Obj().Name() + ")." + fn.Name()
		}
		return pkg + "." + fn.Name()
	}
	if named, ok := t.(*types.Named); ok {
		return pkg + "." + named.Obj().Name() + "." + fn.Name()
	}
	return pkg + "." + fn.Name()
}

// shortFuncName renders a function for messages without the module path:
// "cpu.(*Core).Step".
func shortFuncName(fn *types.Func) string {
	name := pprofName(fn)
	if i := strings.LastIndex(name, "/"); i >= 0 {
		name = name[i+1:]
	}
	return name
}

// stripClosureSuffix folds pprof closure names onto their enclosing
// function: "pkg.(*T).run.func1.2" becomes "pkg.(*T).run". Trailing
// ".funcN" (and nested ".N") segments are removed; "-fm" method-value
// wrappers are stripped too.
func stripClosureSuffix(name string) string {
	name = strings.TrimSuffix(name, "-fm")
	for {
		i := strings.LastIndex(name, ".")
		if i < 0 {
			return name
		}
		seg := name[i+1:]
		if isClosureSegment(seg) {
			name = name[:i]
			continue
		}
		return name
	}
}

// isClosureSegment reports whether a dot-separated name segment is a
// compiler-generated closure id: "func1", "func2", or a bare ordinal "2".
func isClosureSegment(seg string) bool {
	if seg == "" {
		return false
	}
	digits := seg
	if strings.HasPrefix(seg, "func") {
		digits = seg[len("func"):]
		if digits == "" {
			return false
		}
	}
	for _, r := range digits {
		if r < '0' || r > '9' {
			return false
		}
	}
	return true
}
