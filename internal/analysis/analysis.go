// Package analysis is the repo's domain-specific static-analysis layer:
// a small linter framework plus the analyzers behind cmd/xeonlint.
//
// The golden-artifact gate (internal/golden) catches a drifted paper
// metric only after the drift has happened; the analyzers here move the
// invariants that gate depends on to compile time. Since PR 4 the package
// is a dataflow engine, not just per-file AST walks: a Program computes
// shared Facts (function index, module-wide call graph, field-use
// relation — see facts.go) that the interprocedural passes solve their
// fixed points over, plus shared concurrency summaries (may-block,
// lock-acquisition, WaitGroup-join facts — see conc.go). Since PR 9 a
// profile-guided tier joins them: a stdlib-only pprof reader (pgo.go)
// extracts a deterministic hot set from the checked-in CPU profile, maps
// it onto the call graph, and three performance analyzers lint only the
// code the profile says matters. Eleven analyzers guard the promises the
// reproduction makes:
//
//   - taint: no wall clock, no unseeded math/rand, no map-iteration
//     order leaking into ordered output — plus interprocedural
//     nondeterminism taint: a clock/rand/env value laundered through
//     helpers or struct fields into a golden/report/journal/runcache
//     serialization sink is reported at the sink
//   - dimension: physical dimensions (cycles, ns, seconds, bytes, events)
//     inferred from internal/units constants, counters metrics, and
//     naming conventions, propagated through arithmetic; mixed-dimension
//     addition and meaningless products are findings
//   - unitsafety: no magic ns/Hz/byte conversion literals bypassing
//     internal/units (with a -fix rewrite to the named constant)
//   - errdrop: no silently dropped error returns (the forEachJob bug
//     class; bare statement drops carry a -fix `_ =` rewrite)
//   - ctxflow: cancellation reaches the blocking frontier — no fresh
//     context roots outside main/tests, no ctx parameter dropped before
//     a may-block callee, no unguarded channel op or cond wait, no
//     select without a ctx.Done() arm (with -fix rewrites for roots and
//     missing Done arms)
//   - goleak: every goroutine has a provable termination path — a
//     WaitGroup join someone Waits on (checked across calls), a context
//     handed to the spawned function, or a structurally finite body
//   - lockorder: no lock-acquisition cycles module-wide, no re-acquiring
//     a held lock (directly or through a callee), no lock held across a
//     blocking operation; subsumes the retired lockcheck patterns (locks
//     copied by value, loop goroutines writing captured state unlocked)
//   - counterparity: every counters.Metrics column and counters.Event name
//     has a renderer/exporter twin, so golden JSON schemas cannot silently
//     lose a column
//   - hotalloc: no per-iteration heap allocations in profile-hot loops —
//     string concat, fmt.Sprint*, capturing closures, interface boxing,
//     defer-in-loop, capacity-less append (with -fix rewrites for the
//     cases where the rewrite provably preserves behavior)
//   - hotcall: no avoidable per-iteration call overhead in hot loops —
//     devirtualizable single-implementation interface calls, hoistable
//     loop-invariant map lookups, channel ops; hot→cold calls into
//     functions too large to inline are advisory notes
//   - benchparity: every profile-hot function is reachable from a
//     Benchmark* in the module, so the BENCH_*.json perf gate has no
//     blind spot where the profile says the time goes
//
// Findings can be suppressed per line with
//
//	//xeonlint:ignore <analyzer>[,<analyzer>|all] <reason>
//
// on the offending line or the line directly above it. The reason is
// mandatory, and an ignore that suppresses nothing is itself reported, so
// suppressions cannot rot silently. Findings may carry machine-applicable
// fixes (fix.go); cmd/xeonlint applies them with -fix and previews them
// with -diff.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"runtime"
	"sort"
	"strings"
	"sync"

	"xeonomp/internal/obs"
)

// Diagnostic is one finding: a position, the analyzer that produced it,
// a message, and optionally a machine-applicable fix. The driver renders
// it as "file:line:col: [analyzer] msg".
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
	// Fix, when non-nil, is a textual edit that resolves the finding;
	// cmd/xeonlint applies it under -fix and previews it under -diff.
	Fix *SuggestedFix
	// Note marks advisory diagnostics (hotcall's hot→cold inlining
	// notes): printed, but excluded from the failing exit status.
	Note bool
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: [%s] %s", d.Pos.Filename, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
}

// Package is one type-checked package of a loaded Program.
type Package struct {
	// Path is the import path ("xeonomp/internal/core").
	Path string
	// Name is the package name ("core", "main").
	Name string
	// Dir is the directory the sources were read from.
	Dir string
	// Files are the parsed sources, sorted by file name.
	Files []*ast.File
	// Types and Info are the go/types results for the package.
	Types *types.Package
	Info  *types.Info
}

// Program is a set of type-checked packages sharing one FileSet — the
// whole module, for the cross-package analyzers.
type Program struct {
	Fset     *token.FileSet
	Packages []*Package
	// ModulePath is the module path from go.mod, set by the loader; the
	// PGO layer uses it to decide which profile frames belong to the
	// module (see moduleProfileName).
	ModulePath string

	// PGO, when set before Run, attaches a decoded pprof profile (see
	// pgo.go); the hotalloc/hotcall/benchparity analyzers derive their
	// hot set from it. With no profile, only //xeonlint:hot directives
	// seed the hot set.
	PGO *PGOProfile
	// HotThreshold is the flat-share cutoff for profile-hot functions;
	// zero means DefaultHotThreshold.
	HotThreshold float64
	// Workers bounds the per-package fan-out inside Run/RunTimed; zero
	// means GOMAXPROCS. One worker reproduces the old serial driver.
	Workers int

	factsMu sync.Mutex
	facts   *Facts // built on first Facts() call, shared by every analyzer
}

// ByName returns the loaded packages with the given package name.
func (p *Program) ByName(name string) []*Package {
	var out []*Package
	for _, pkg := range p.Packages {
		if pkg.Name == name {
			out = append(out, pkg)
		}
	}
	return out
}

// Analyzer is one lint pass. Check sees a single package but receives the
// whole Program so cross-package analyzers (counterparity) can consult
// their counterpart packages.
type Analyzer interface {
	// Name is the stable identifier used in reports and ignore directives.
	Name() string
	// Doc is a one-line description for -list.
	Doc() string
	// Check returns the analyzer's findings for pkg.
	Check(prog *Program, pkg *Package) []Diagnostic
}

// Analyzers returns every registered analyzer in reporting order.
func Analyzers() []Analyzer {
	return []Analyzer{
		&NDTaint{},
		&Dimension{},
		&UnitSafety{},
		&ErrDrop{},
		&CtxFlow{},
		&GoLeak{},
		&LockOrder{},
		&CounterParity{},
		&HotAlloc{},
		&HotCall{},
		&BenchParity{},
	}
}

// ignoreDirective is one parsed //xeonlint:ignore comment.
type ignoreDirective struct {
	pos       token.Position
	analyzers map[string]bool // nil when "all"
	used      bool
}

// matches reports whether the directive suppresses analyzer findings on
// the given line of its file: the directive's own line or the next one.
func (d *ignoreDirective) matches(analyzer string, line int) bool {
	if line != d.pos.Line && line != d.pos.Line+1 {
		return false
	}
	return d.analyzers == nil || d.analyzers[analyzer]
}

const ignorePrefix = "//xeonlint:ignore"

// parseIgnores extracts the ignore directives of a file. Malformed
// directives — no analyzer list, unknown analyzer name, or a missing
// reason — are reported rather than half-obeyed.
func parseIgnores(fset *token.FileSet, f *ast.File, known map[string]bool) ([]*ignoreDirective, []Diagnostic) {
	var dirs []*ignoreDirective
	var diags []Diagnostic
	for _, cg := range f.Comments {
		for _, c := range cg.List {
			if !strings.HasPrefix(c.Text, ignorePrefix) {
				continue
			}
			pos := fset.Position(c.Pos())
			rest := strings.TrimPrefix(c.Text, ignorePrefix)
			fields := strings.Fields(rest)
			if len(fields) < 2 {
				diags = append(diags, Diagnostic{Pos: pos, Analyzer: "xeonlint",
					Message: "malformed ignore: want //xeonlint:ignore <analyzer>[,<analyzer>|all] <reason>"})
				continue
			}
			d := &ignoreDirective{pos: pos}
			if fields[0] != "all" {
				d.analyzers = map[string]bool{}
				bad := false
				for _, name := range strings.Split(fields[0], ",") {
					if !known[name] {
						diags = append(diags, Diagnostic{Pos: pos, Analyzer: "xeonlint",
							Message: fmt.Sprintf("ignore names unknown analyzer %q", name)})
						bad = true
						break
					}
					d.analyzers[name] = true
				}
				if bad {
					continue
				}
			}
			dirs = append(dirs, d)
		}
	}
	return dirs, diags
}

// AnalyzerTiming is one analyzer's wall time over the whole module, for
// xeonlint's verbose output. The clock is read through internal/obs, the
// module's sanctioned timing boundary.
type AnalyzerTiming struct {
	Name      string
	ElapsedNs int64
}

// Run executes the analyzers over every package of the program, applies
// the per-line ignore directives, and reports unused ignores. Diagnostics
// come back sorted by position.
func (p *Program) Run(analyzers []Analyzer) []Diagnostic {
	diags, _ := p.RunTimed(analyzers)
	return diags
}

// RunTimed is Run plus per-analyzer wall time, in the analyzers' order.
func (p *Program) RunTimed(analyzers []Analyzer) ([]Diagnostic, []AnalyzerTiming) {
	// Directives are validated against the full registry, not the running
	// subset, so `xeonlint -only ctxflow` over a tree with errdrop ignores
	// neither rejects those directives as unknown nor reports them unused.
	known := map[string]bool{}
	for _, a := range Analyzers() {
		known[a.Name()] = true
	}
	running := map[string]bool{}
	for _, a := range analyzers {
		running[a.Name()] = true
	}

	var diags []Diagnostic
	ignores := map[string][]*ignoreDirective{} // filename -> directives
	for _, pkg := range p.Packages {
		for _, f := range pkg.Files {
			dirs, bad := parseIgnores(p.Fset, f, known)
			diags = append(diags, bad...)
			for _, d := range dirs {
				ignores[d.pos.Filename] = append(ignores[d.pos.Filename], d)
			}
		}
	}

	// Per-package fan-out: each analyzer still runs to completion before
	// the next starts (so -v wall times stay attributable to one
	// analyzer), but its Check calls spread over a bounded worker pool.
	// Results are collected per package index and merged in package
	// order, then sorted — the output is byte-identical to a serial run.
	// The module-wide fixed points the analyzers solve lazily on first
	// Check are serialized by the Facts mutex, so concurrent first calls
	// build each layer exactly once.
	workers := p.Workers
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(p.Packages) {
		workers = len(p.Packages)
	}
	if workers < 1 {
		workers = 1
	}
	var timings []AnalyzerTiming
	for _, a := range analyzers {
		t := obs.StartTimer()
		perPkg := make([][]Diagnostic, len(p.Packages))
		jobs := make(chan int)
		var wg sync.WaitGroup
		for w := 0; w < workers; w++ {
			wg.Add(1)
			go func() {
				defer wg.Done()
				for i := range jobs {
					perPkg[i] = a.Check(p, p.Packages[i])
				}
			}()
		}
		for i := range p.Packages {
			jobs <- i
		}
		close(jobs)
		wg.Wait()
		for _, pkgDiags := range perPkg {
			for _, d := range pkgDiags {
				suppressed := false
				for _, ig := range ignores[d.Pos.Filename] {
					if ig.matches(d.Analyzer, d.Pos.Line) {
						ig.used = true
						suppressed = true
					}
				}
				if !suppressed {
					diags = append(diags, d)
				}
			}
		}
		timings = append(timings, AnalyzerTiming{Name: a.Name(), ElapsedNs: t.ElapsedNs()})
	}

	files := make([]string, 0, len(ignores))
	for f := range ignores {
		files = append(files, f)
	}
	sort.Strings(files)
	for _, f := range files {
		for _, ig := range ignores[f] {
			if ig.used {
				continue
			}
			// An ignore for an analyzer that did not run this invocation
			// cannot be judged unused.
			if ig.analyzers != nil && !intersects(ig.analyzers, running) {
				continue
			}
			diags = append(diags, Diagnostic{Pos: ig.pos, Analyzer: "xeonlint",
				Message: "unused ignore directive suppresses nothing; delete it"})
		}
	}

	SortDiagnostics(diags)
	return diags, timings
}

// intersects reports whether the two name sets share an element.
func intersects(a, b map[string]bool) bool {
	for k := range a {
		if b[k] {
			return true
		}
	}
	return false
}

// SortDiagnostics orders findings deterministically — file, line, column,
// analyzer, message — so repeated runs and -json output are diff-stable
// regardless of package iteration or analyzer solve order.
func SortDiagnostics(diags []Diagnostic) {
	sort.Slice(diags, func(i, j int) bool {
		a, b := diags[i], diags[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		if a.Pos.Column != b.Pos.Column {
			return a.Pos.Column < b.Pos.Column
		}
		if a.Analyzer != b.Analyzer {
			return a.Analyzer < b.Analyzer
		}
		return a.Message < b.Message
	})
}

// calleeFunc resolves the called function or method of a call expression,
// or nil for calls through function values.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		if fn, ok := info.Uses[fun].(*types.Func); ok {
			return fn
		}
	case *ast.SelectorExpr:
		if fn, ok := info.Uses[fun.Sel].(*types.Func); ok {
			return fn
		}
	}
	return nil
}

// isErrorType reports whether t is the built-in error interface.
func isErrorType(t types.Type) bool {
	return types.Identical(t, types.Universe.Lookup("error").Type())
}

// returnsError reports whether the call's result tuple contains an error.
func returnsError(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call]
	if !ok || tv.Type == nil {
		return false
	}
	switch t := tv.Type.(type) {
	case *types.Tuple:
		for i := 0; i < t.Len(); i++ {
			if isErrorType(t.At(i).Type()) {
				return true
			}
		}
		return false
	default:
		return isErrorType(t)
	}
}

// funcBodies visits every function body of f — declarations and literals —
// exactly once, with the node that owns the body.
func funcBodies(f *ast.File, visit func(owner ast.Node, body *ast.BlockStmt)) {
	ast.Inspect(f, func(n ast.Node) bool {
		switch fn := n.(type) {
		case *ast.FuncDecl:
			if fn.Body != nil {
				visit(fn, fn.Body)
			}
		case *ast.FuncLit:
			visit(fn, fn.Body)
		}
		return true
	})
}

// pathHasSuffix reports whether an import path ends with the given
// slash-separated suffix ("internal/journal" matches
// "xeonomp/internal/journal" but not "xeonomp/internal/journalx").
func pathHasSuffix(path, suffix string) bool {
	return path == suffix || strings.HasSuffix(path, "/"+suffix)
}
