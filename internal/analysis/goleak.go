package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
)

// GoLeak requires every spawned goroutine to have a provable termination
// path. A leaked goroutine in the daemon is capacity that never comes
// back: internal/server's job and progress goroutines outlive requests,
// so "it probably exits" is not evidence. Accepted proofs, in order:
//
//   - join: the body calls (*sync.WaitGroup).Done on a WaitGroup some
//     function in the module Waits on; when the WaitGroup arrives as a
//     parameter of the spawning helper, every caller is checked for the
//     matching Wait — the interprocedural "helper spawns on behalf of
//     its caller" case
//   - cancellation: a declared target that takes a context.Context and is
//     handed one is cancellable by contract (ctxflow separately enforces
//     that the ctx reaches its blocking ops)
//   - structural termination: the body has no unbounded loop without a
//     ctx.Done() exit, no receive/range on a never-closed channel, no
//     unbuffered send outside a guarded select, and no un-bridged
//     cond.Wait — recursing into module callees, which is what lets a
//     helper's blocking loop surface at the distant go statement
//
// Channel close/buffer evidence is module-wide (conc.go): the close
// commonly lives in the spawner while the receive lives in the helper.
type GoLeak struct{}

func (*GoLeak) Name() string { return "goleak" }
func (*GoLeak) Doc() string {
	return "flag goroutines with no provable termination path (join, cancellation, or structural)"
}

// goleakDepth bounds the callee recursion of the structural check.
const goleakDepth = 3

func (a *GoLeak) Check(prog *Program, pkg *Package) []Diagnostic {
	facts := prog.Facts()
	cf := facts.concFor()
	var diags []Diagnostic
	for _, b := range facts.Bodies(pkg) {
		b := b
		ast.Inspect(b.Block, func(n ast.Node) bool {
			gs, ok := n.(*ast.GoStmt)
			if !ok {
				return true
			}
			if reason := a.checkSpawn(pkg, cf, b, gs); reason != "" {
				diags = append(diags, Diagnostic{Pos: prog.Fset.Position(gs.Pos()), Analyzer: a.Name(),
					Message: "goroutine has no provable termination path: " + reason})
			}
			return true
		})
	}
	return diags
}

// checkSpawn validates one go statement; "" means a termination path was
// proven, anything else is the finding's reason.
func (a *GoLeak) checkSpawn(pkg *Package, cf *concFacts, b Body, gs *ast.GoStmt) string {
	info := pkg.Info

	if lit, ok := ast.Unparen(gs.Call.Fun).(*ast.FuncLit); ok {
		if reason, joined := a.joinEvidence(pkg, cf, b, lit.Body); joined {
			return reason
		}
		return a.terminates(cf, pkg, lit.Body, goleakDepth, map[*types.Func]bool{})
	}

	fn := calleeFunc(info, gs.Call)
	if fn == nil {
		return "target is a function value; spawn a named function or literal the analyzer can see"
	}
	fi := cf.facts.FuncOf[fn]
	if fi == nil {
		// Out-of-module target (http.Server.Serve, etc.): its lifecycle is
		// the library's contract, not ours.
		return ""
	}
	// A declared target that accepts a context and is handed one is
	// cancellable by contract.
	if funcHasCtxParam(fn) {
		for _, arg := range gs.Call.Args {
			if tv, ok := info.Types[arg]; ok && tv.Type != nil && isContextType(tv.Type) {
				return ""
			}
		}
		return fmt.Sprintf("%s takes a context but the spawn passes none", moduleFuncName(fn))
	}
	if reason, joined := a.joinEvidence(fi.Pkg, cf, Body{Owner: fi.Decl, Fn: fn, Pkg: fi.Pkg, Block: fi.Decl.Body}, fi.Decl.Body); joined {
		return reason
	}
	return a.terminates(cf, fi.Pkg, fi.Decl.Body, goleakDepth, map[*types.Func]bool{fn: true})
}

// joinEvidence looks for WaitGroup join structure in a spawned body: a
// Done() call whose WaitGroup some module function Waits on. Returns
// joined=false when the body has no Done at all (caller falls through to
// the structural check); joined=true with reason "" on a proven join, or
// with a non-empty reason when the join is broken — a Done on a
// parameter WaitGroup that some caller never Waits on.
func (a *GoLeak) joinEvidence(pkg *Package, cf *concFacts, b Body, spawned *ast.BlockStmt) (string, bool) {
	info := pkg.Info
	var wgObj types.Object
	ast.Inspect(spawned, func(n ast.Node) bool {
		if wgObj != nil {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fn := calleeFunc(info, call)
		if fn == nil {
			return true
		}
		if kind, method := syncPrimitiveMethod(fn); kind == "WaitGroup" && method == "Done" {
			wgObj = receiverObject(info, call)
			return false
		}
		return true
	})
	if wgObj == nil {
		return "", false
	}
	if len(cf.waits[wgObj]) > 0 {
		return "", true
	}
	// The WaitGroup came in as a parameter of the spawning function: the
	// join lives (or doesn't) in the callers.
	if b.Fn != nil {
		if idx := paramIndex(b.Fn, wgObj); idx >= 0 {
			if reason := a.checkCallerJoins(cf, b.Fn, idx); reason != "" {
				return reason, true
			}
			return "", true
		}
	}
	return fmt.Sprintf("Done on WaitGroup %q that nothing in the module Waits on", wgObj.Name()), true
}

// paramIndex returns the position of obj in fn's parameter tuple, or -1.
func paramIndex(fn *types.Func, obj types.Object) int {
	sig, ok := fn.Type().(*types.Signature)
	if !ok {
		return -1
	}
	for i := 0; i < sig.Params().Len(); i++ {
		if sig.Params().At(i) == obj {
			return i
		}
	}
	return -1
}

// checkCallerJoins verifies that every caller of fn passes, as parameter
// idx, a WaitGroup that is Waited on somewhere in the module. Returns ""
// when all callers join, else the first broken caller.
func (a *GoLeak) checkCallerJoins(cf *concFacts, fn *types.Func, idx int) string {
	facts := cf.facts
	for _, caller := range facts.Callers[fn] {
		ci := facts.FuncOf[caller]
		if ci == nil {
			continue
		}
		broken := ""
		ast.Inspect(ci.Decl.Body, func(n ast.Node) bool {
			if broken != "" {
				return false
			}
			call, ok := n.(*ast.CallExpr)
			if !ok || calleeFunc(ci.Pkg.Info, call) != fn || len(call.Args) <= idx {
				return true
			}
			argObj := chainObject(ci.Pkg.Info, call.Args[idx])
			if argObj == nil {
				return true
			}
			if len(cf.waits[argObj]) > 0 {
				return true
			}
			// The caller itself received it as a parameter: trust the next
			// frame up rather than chasing the whole call tree.
			if paramIndex(caller, argObj) >= 0 {
				return true
			}
			broken = fmt.Sprintf("spawned for %s, which never Waits on the WaitGroup it passes", moduleFuncName(caller))
			return false
		})
		if broken != "" {
			return broken
		}
	}
	return ""
}

// terminates structurally checks a body for a termination path; ""
// means provable, anything else is the reason it is not.
func (a *GoLeak) terminates(cf *concFacts, pkg *Package, body *ast.BlockStmt, depth int, visited map[*types.Func]bool) string {
	info := pkg.Info
	hasAfterFunc := callsAfterFunc(info, body)

	// Selects are judged as units; their comm ops are not re-judged.
	var selectRanges [][2]token.Pos
	reason := ""
	fail := func(format string, args ...any) {
		if reason == "" {
			reason = fmt.Sprintf(format, args...)
		}
	}
	ast.Inspect(body, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectStmt); ok {
			selectRanges = append(selectRanges, [2]token.Pos{sel.Pos(), sel.End()})
		}
		return true
	})
	inSelect := func(n ast.Node) bool {
		for _, r := range selectRanges {
			if n.Pos() > r[0] && n.End() <= r[1] {
				return true
			}
		}
		return false
	}

	ast.Inspect(body, func(n ast.Node) bool {
		if reason != "" {
			return false
		}
		switch n := n.(type) {
		case *ast.ForStmt:
			if n.Cond == nil && !mentionsDone(info, n.Body) {
				fail("unbounded for loop with no ctx.Done() exit")
			}
		case *ast.RangeStmt:
			if isChanType(info, n.X) && !cf.closedAnywhere[chainObject(info, n.X)] {
				fail("ranges over channel %s, which nothing closes", exprString(n.X))
			}
		case *ast.SendStmt:
			if !inSelect(n) && !cf.bufferedAnywhere[chainObject(info, n.Chan)] {
				fail("sends on unbuffered channel %s outside a guarded select", exprString(n.Chan))
			}
		case *ast.UnaryExpr:
			if n.Op != token.ARROW || inSelect(n) || isDoneCall(info, n.X) {
				return true
			}
			obj := chainObject(info, n.X)
			if !cf.closedAnywhere[obj] && !cf.bufferedAnywhere[obj] {
				fail("receives from channel %s, which nothing closes", exprString(n.X))
			}
		case *ast.SelectStmt:
			if !selectHasDoneArm(info, n) && !selectCommsEvidencedAnywhere(info, n, cf) {
				fail("blocks in a select with no ctx.Done() arm or default")
			}
		case *ast.CallExpr:
			fn := calleeFunc(info, n)
			if fn == nil {
				return true
			}
			if kind, method := syncPrimitiveMethod(fn); kind == "Cond" && method == "Wait" && !hasAfterFunc {
				fail("waits on a sync.Cond with no context.AfterFunc bridge")
				return true
			}
			fi := cf.facts.FuncOf[fn]
			if fi == nil || visited[fn] || funcHasCtxParam(fn) {
				return true
			}
			if depth > 0 && cf.blocking[fn] {
				visited[fn] = true
				if r := a.terminates(cf, fi.Pkg, fi.Decl.Body, depth-1, visited); r != "" {
					fail("calls %s, which %s", moduleFuncName(fn), r)
				}
			}
		}
		return true
	})
	return reason
}

// selectCommsEvidencedAnywhere is selectCommsEvidenced against the
// module-wide buffer/close evidence.
func selectCommsEvidencedAnywhere(info *types.Info, sel *ast.SelectStmt, cf *concFacts) bool {
	return selectCommsEvidenced(info, sel, cf.bufferedAnywhere, cf.closedAnywhere)
}

// mentionsDone reports whether a loop body contains any ctx.Done() or
// ctx.Err() consultation — the conventional cancellation exit.
func mentionsDone(info *types.Info, body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || (sel.Sel.Name != "Done" && sel.Sel.Name != "Err") {
			return true
		}
		if tv, ok := info.Types[sel.X]; ok && isContextType(tv.Type) {
			found = true
		}
		return !found
	})
	return found
}
