package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// UnitSafety flags magic unit-conversion literals — 1e9, 1e6, 2.8e9,
// 1_000_000_000 and friends — used directly in arithmetic. Every derived
// rate the golden artifacts pin (GB/s bandwidths, MOPS, ns↔cycle
// conversions) must flow through internal/units, where the conversion
// constants are named, audited, and shared; a literal 1e9 is ambiguous
// between GHz, GB, and ns/s, which is exactly how silent unit bugs ship.
type UnitSafety struct{}

func (*UnitSafety) Name() string { return "unitsafety" }
func (*UnitSafety) Doc() string {
	return "flag magic ns/Hz/byte conversion literals in arithmetic that bypass internal/units"
}

// unitsPackage is the one package allowed to spell conversion factors as
// literals: it is where they get their names.
const unitsPackage = "internal/units"

// magicFloat matches power-of-ten scientific literals used as unit
// conversion factors: a mantissa times e3/e6/e9/e12 (1e9, 2.8e9, 0.1e9).
var magicFloat = regexp.MustCompile(`^\d+(\.\d+)?[eE]\+?(3|6|9|12)$`)

// magicInts are the spelled-out decimal forms of the same factors.
var magicInts = map[string]bool{
	"1000":          true,
	"1000000":       true,
	"1000000000":    true,
	"1000000000000": true,
}

func (a *UnitSafety) Check(prog *Program, pkg *Package) []Diagnostic {
	if pathHasSuffix(pkg.Path, unitsPackage) {
		return nil
	}
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if strings.HasSuffix(prog.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.MUL && bin.Op != token.QUO) {
				return true
			}
			for _, operand := range []ast.Expr{bin.X, bin.Y} {
				lit, ok := ast.Unparen(operand).(*ast.BasicLit)
				if !ok {
					continue
				}
				if !a.isMagic(lit) {
					continue
				}
				diags = append(diags, Diagnostic{prog.Fset.Position(lit.Pos()), a.Name(),
					fmt.Sprintf("magic conversion literal %s in arithmetic; name it through internal/units (units.GB, units.GHz, units.Mega, ...)", lit.Value)})
			}
			return true
		})
	}
	return diags
}

// isMagic reports whether a literal spells a power-of-ten conversion
// factor.
func (a *UnitSafety) isMagic(lit *ast.BasicLit) bool {
	text := strings.ReplaceAll(lit.Value, "_", "")
	switch lit.Kind {
	case token.FLOAT:
		return magicFloat.MatchString(text)
	case token.INT:
		return magicInts[text]
	}
	return false
}
