package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"regexp"
	"strings"
)

// UnitSafety flags magic unit-conversion literals — 1e9, 1e6, 2.8e9,
// 1_000_000_000 and friends — used directly in arithmetic. Every derived
// rate the golden artifacts pin (GB/s bandwidths, MOPS, ns↔cycle
// conversions) must flow through internal/units, where the conversion
// constants are named, audited, and shared; a literal 1e9 is ambiguous
// between GHz, GB, and ns/s, which is exactly how silent unit bugs ship.
type UnitSafety struct{}

func (*UnitSafety) Name() string { return "unitsafety" }
func (*UnitSafety) Doc() string {
	return "flag magic ns/Hz/byte conversion literals in arithmetic that bypass internal/units"
}

// unitsPackage is the one package allowed to spell conversion factors as
// literals: it is where they get their names.
const unitsPackage = "internal/units"

// magicFloat matches power-of-ten scientific literals used as unit
// conversion factors: a mantissa times e3/e6/e9/e12 (1e9, 2.8e9, 0.1e9).
var magicFloat = regexp.MustCompile(`^\d+(\.\d+)?[eE]\+?(3|6|9|12)$`)

// magicInts are the spelled-out decimal forms of the same factors.
var magicInts = map[string]bool{
	"1000":          true,
	"1000000":       true,
	"1000000000":    true,
	"1000000000000": true,
}

func (a *UnitSafety) Check(prog *Program, pkg *Package) []Diagnostic {
	if pathHasSuffix(pkg.Path, unitsPackage) {
		return nil
	}
	units := unitsPkgOf(prog)
	var diags []Diagnostic
	for _, f := range pkg.Files {
		if strings.HasSuffix(prog.Fset.Position(f.Pos()).Filename, "_test.go") {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			bin, ok := n.(*ast.BinaryExpr)
			if !ok || (bin.Op != token.MUL && bin.Op != token.QUO) {
				return true
			}
			for i, operand := range []ast.Expr{bin.X, bin.Y} {
				lit, ok := ast.Unparen(operand).(*ast.BasicLit)
				if !ok {
					continue
				}
				if !a.isMagic(lit) {
					continue
				}
				sibling := bin.Y
				if i == 1 {
					sibling = bin.X
				}
				diags = append(diags, Diagnostic{
					Pos:      prog.Fset.Position(lit.Pos()),
					Analyzer: a.Name(),
					Message:  fmt.Sprintf("magic conversion literal %s in arithmetic; name it through internal/units (units.GB, units.GHz, units.Mega, ...)", lit.Value),
					Fix:      a.rewriteFix(f, units, lit, sibling)})
			}
			return true
		})
	}
	return diags
}

// unitsPkgOf finds the loaded module's internal/units package, the target
// of the literal rewrites; nil when the module has none.
func unitsPkgOf(prog *Program) *Package {
	for _, pkg := range prog.Packages {
		if pathHasSuffix(pkg.Path, unitsPackage) {
			return pkg
		}
	}
	return nil
}

// rewriteFix builds the literal→units.Constant edit. The constant is
// picked by the factor's magnitude, disambiguated by the text around the
// literal (a 1e9 next to "freq" is GHz, next to "bytes" is GB, otherwise
// ns-per-second); a non-unit mantissa becomes a parenthesized product
// (2.8e9 → (2.8 * units.GHz)). Factors with no safe spelling (1e12) and
// modules without a units package get no fix — the finding still reports.
func (a *UnitSafety) rewriteFix(f *ast.File, units *Package, lit *ast.BasicLit, sibling ast.Expr) *SuggestedFix {
	if units == nil {
		return nil
	}
	mantissa, exp := splitMagic(lit)
	if exp == 0 {
		return nil
	}
	context := strings.ToLower(exprString(sibling))
	freqish := strings.Contains(context, "freq") || strings.Contains(context, "hz") || strings.Contains(context, "clock")
	byteish := strings.Contains(context, "byte") || strings.Contains(context, "bw") || strings.Contains(context, "band")

	var constant string
	switch exp {
	case 3:
		if !freqish {
			return nil // a bare 1000 could be ms↔s, KB, or KHz; no safe guess
		}
		constant = "KHz"
	case 6:
		if freqish {
			constant = "MHz"
		} else {
			constant = "Mega"
		}
	case 9:
		switch {
		case freqish:
			constant = "GHz"
		case byteish:
			constant = "GB"
		default:
			constant = "NsPerSecond"
		}
	default:
		return nil
	}
	replacement := units.Name + "." + constant
	if mantissa != "" && mantissa != "1" {
		replacement = "(" + mantissa + " * " + replacement + ")"
	}
	fix := &SuggestedFix{
		Message: fmt.Sprintf("replace %s with %s", lit.Value, replacement),
		Edits:   []TextEdit{{Pos: lit.Pos(), End: lit.End(), NewText: replacement}},
	}
	if imp := importEdit(f, units); imp != nil {
		fix.Edits = append(fix.Edits, *imp)
	}
	return fix
}

// splitMagic decomposes a magic literal into its mantissa text and
// decimal exponent ("2.8e9" → "2.8", 9; "1000000" → "1", 6). A zero
// exponent means the literal is not a recognized factor.
func splitMagic(lit *ast.BasicLit) (string, int) {
	text := strings.ReplaceAll(lit.Value, "_", "")
	if i := strings.IndexAny(text, "eE"); i >= 0 {
		mant := text[:i]
		switch strings.TrimPrefix(text[i+1:], "+") {
		case "3":
			return mant, 3
		case "6":
			return mant, 6
		case "9":
			return mant, 9
		case "12":
			return mant, 12
		}
		return "", 0
	}
	switch text {
	case "1000":
		return "1", 3
	case "1000000":
		return "1", 6
	case "1000000000":
		return "1", 9
	case "1000000000000":
		return "1", 12
	}
	return "", 0
}

// importEdit returns the edit inserting the units import into f, or nil
// when f already imports it.
func importEdit(f *ast.File, units *Package) *TextEdit {
	quoted := `"` + units.Path + `"`
	var lastImport *ast.GenDecl
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		lastImport = gd
		for _, spec := range gd.Specs {
			if is, ok := spec.(*ast.ImportSpec); ok && is.Path.Value == quoted {
				return nil
			}
		}
	}
	if lastImport == nil {
		// No imports at all: start a block after the package clause.
		pos := f.Name.End()
		return &TextEdit{Pos: pos, End: pos, NewText: "\n\nimport " + quoted}
	}
	if lastImport.Rparen != token.NoPos {
		return &TextEdit{Pos: lastImport.Rparen, End: lastImport.Rparen, NewText: "\t" + quoted + "\n"}
	}
	// A single unparenthesized import: append another one below it.
	return &TextEdit{Pos: lastImport.End(), End: lastImport.End(), NewText: "\nimport " + quoted}
}

// isMagic reports whether a literal spells a power-of-ten conversion
// factor.
func (a *UnitSafety) isMagic(lit *ast.BasicLit) bool {
	text := strings.ReplaceAll(lit.Value, "_", "")
	switch lit.Kind {
	case token.FLOAT:
		return magicFloat.MatchString(text)
	case token.INT:
		return magicInts[text]
	}
	return false
}
