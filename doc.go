// Package xeonomp reproduces "A Comprehensive Analysis of OpenMP
// Applications on Dual-Core Intel Xeon SMPs" (Grant & Afsahi, IPPS 2007) as
// a Go library: a cycle-approximate simulator of a two-way dual-core
// Hyper-Threaded Xeon SMP, an OpenMP-like runtime with functional NAS
// benchmark implementations, and a characterization framework that
// regenerates every table and figure of the paper.
//
// See README.md for the tour, ARCHITECTURE.md for the module map and
// data flow, DESIGN.md for the system inventory and substitutions, and
// EXPERIMENTS.md for paper-vs-measured results. Long regenerations are
// cacheable and resumable through internal/runcache (content-addressed
// run cache) and internal/journal (JSONL run journal + progress), and
// every reproduced paper number is pinned as a golden artifact under
// testdata/golden via internal/golden (xeonchar -check is the CI drift
// gate). The benchmarks in bench_test.go regenerate each experiment:
//
//	go test -bench=. -benchmem
//
// The command-line entry points live under cmd/: xeonchar (all figures and
// tables), nasrun (functional NAS benchmarks), lmbench (Section 3
// calibration) and sweep (design-choice ablations).
package xeonomp
