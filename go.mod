module xeonomp

go 1.22
