// Command benchsnap measures raw simulator throughput on a fixed grid of
// cell kinds and records it as a BENCH_*.json snapshot, the repo's
// versioned performance trajectory (see PERFORMANCE.md).
//
// The grid crosses a memory-bound kernel (CG) with a compute-bound one
// (EP) over serial, HT-shared-core, and dual-core configurations — the
// axes the cycle-engine optimizations move. Each kind is simulated -reps
// times after a warmup pass, and the snapshot records wall time, cells
// per second, simulated cycles per wall second (from the internal/obs
// machine counters), and allocations per cell.
//
//	benchsnap -out BENCH_20260808.json -date 2026-08-08
//	benchsnap -check BENCH_20260808.json
//
// With -check, the freshly measured throughput is compared against the
// named snapshot and the command exits nonzero if total cells/s regressed
// by more than -threshold (default 20%), which is how CI gates engine
// changes. -out and -check compose: measure once, write the new snapshot,
// and judge it against the old one.
//
// -best N repeats the whole measurement N times and keeps the fastest by
// total cells/s before writing or gating. Throughput on shared CI
// runners is one-sided noise — a neighbor can only steal cycles, never
// donate them — so the max of a few measurements estimates the machine's
// true rate far better than any single run, and the regression gate
// stops failing on scheduler weather (`make bench-snapshot` uses
// -reps 5 -best 3).
//
// Wall time is read through obs.StartTimer — the observability layer is
// the tree's single clock-reading choke point — and never flows into
// simulation results: a benchsnap snapshot describes the simulator, not
// the simulated machine.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"time"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/obs"
	"xeonomp/internal/profiles"
)

// Kind is one cell of the measurement grid with its measured rates.
type Kind struct {
	Benchmark           string  `json:"benchmark"`
	Config              string  `json:"config"`
	Cells               int     `json:"cells"`
	WallSeconds         float64 `json:"wall_seconds"`
	CellsPerSecond      float64 `json:"cells_per_second"`
	SimulatedCycles     uint64  `json:"simulated_cycles"`
	CyclesPerWallSecond float64 `json:"cycles_per_wall_second"`
	AllocsPerCell       float64 `json:"allocs_per_cell"`
}

// Snapshot is the on-disk BENCH_*.json schema. Totals aggregate the
// kinds; the per-kind rows attribute a regression to memory-bound vs
// compute-bound cells and to the HT-sharing axis.
type Snapshot struct {
	Schema              int     `json:"schema"`
	Date                string  `json:"date,omitempty"`
	GoVersion           string  `json:"go_version"`
	Scale               float64 `json:"scale"`
	Reps                int     `json:"reps"`
	Cells               int     `json:"cells"`
	WallSeconds         float64 `json:"wall_seconds"`
	CellsPerSecond      float64 `json:"cells_per_second"`
	CyclesPerWallSecond float64 `json:"cycles_per_wall_second"`
	AllocsPerCell       float64 `json:"allocs_per_cell"`
	Kinds               []Kind  `json:"kinds"`
}

// grid is the fixed measurement matrix. Changing it invalidates
// comparisons against older snapshots, so extend it only alongside a
// schema bump and a fresh checked-in baseline.
var grid = []struct{ benchmark, config string }{
	{"CG", "Serial"},
	{"CG", "HT on -2-1"},
	{"CG", "HT off -2-2"},
	{"EP", "Serial"},
	{"EP", "HT on -2-1"},
	{"EP", "HT off -2-2"},
}

func main() {
	var (
		out       = flag.String("out", "", "write the measured snapshot to this JSON file")
		check     = flag.String("check", "", "compare against this snapshot; exit 1 on >threshold cells/s regression")
		threshold = flag.Float64("threshold", 0.20, "allowed fractional cells/s regression for -check")
		scale     = flag.Float64("scale", 0.1, "instruction-budget scale per cell")
		reps      = flag.Int("reps", 3, "measured repetitions per grid kind (after one warmup)")
		best      = flag.Int("best", 1, "full measurements to take, keeping the fastest by total cells/s")
		date      = flag.String("date", "", "date stamp recorded in the snapshot (e.g. 2026-08-08)")
	)
	flag.Parse()
	if *reps < 1 {
		fmt.Fprintln(os.Stderr, "benchsnap: -reps must be >= 1")
		os.Exit(2)
	}
	if *best < 1 {
		fmt.Fprintln(os.Stderr, "benchsnap: -best must be >= 1")
		os.Exit(2)
	}

	var snap *Snapshot
	for i := 0; i < *best; i++ {
		cur, err := measure(*scale, *reps, *date)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		if *best > 1 {
			fmt.Printf("measurement %d/%d: %.2f cells/s\n", i+1, *best, cur.CellsPerSecond)
		}
		if snap == nil || cur.CellsPerSecond > snap.CellsPerSecond {
			snap = cur
		}
	}
	fmt.Printf("measured %d cells in %.2fs: %.2f cells/s, %.3g simulated cycles/wall-s, %.0f allocs/cell\n",
		snap.Cells, snap.WallSeconds, snap.CellsPerSecond, snap.CyclesPerWallSecond, snap.AllocsPerCell)

	if *out != "" {
		buf, err := json.MarshalIndent(snap, "", "  ")
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		if err := os.WriteFile(*out, append(buf, '\n'), 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		fmt.Println("wrote", *out)
	}

	if *check != "" {
		base, err := load(*check)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
		if err := compare(base, snap, *threshold, *check); err != nil {
			fmt.Fprintln(os.Stderr, "benchsnap:", err)
			os.Exit(1)
		}
	}
}

// measure runs the grid and aggregates the snapshot. One untimed warmup
// pass populates the machine pool and run-once caches so the measured
// reps see the steady state a study sees.
func measure(scale float64, reps int, date string) (*Snapshot, error) {
	opt := core.DefaultOptions()
	opt.Scale = scale
	cycles := obs.Default.Counter(obs.MetricMachineCycles)

	snap := &Snapshot{
		Schema:    1,
		Date:      date,
		GoVersion: runtime.Version(),
		Scale:     scale,
		Reps:      reps,
	}
	var totalNs int64
	var totalAllocs float64
	for _, g := range grid {
		prof, err := profiles.ByName(g.benchmark)
		if err != nil {
			return nil, err
		}
		cfg, err := config.ByName(g.config)
		if err != nil {
			return nil, err
		}
		if _, err := core.RunSingle(prof, cfg, opt); err != nil {
			return nil, fmt.Errorf("warmup %s/%s: %w", g.benchmark, g.config, err)
		}

		var ms0, ms1 runtime.MemStats
		runtime.ReadMemStats(&ms0)
		cyc0 := cycles.Value()
		t := obs.StartTimer()
		for i := 0; i < reps; i++ {
			if _, err := core.RunSingle(prof, cfg, opt); err != nil {
				return nil, fmt.Errorf("%s/%s: %w", g.benchmark, g.config, err)
			}
		}
		simCycles := cycles.Value() - cyc0
		// The rate quotients go through obs.Timer.Rate, the sanctioned
		// wall-over-simulated division (same as the engine's
		// cycles_per_wall_second gauge).
		cellsPerSec := t.Rate(int64(reps))
		cyclesPerWs := t.Rate(int64(simCycles))
		ns := t.ElapsedNs()
		runtime.ReadMemStats(&ms1)
		allocs := float64(ms1.Mallocs-ms0.Mallocs) / float64(reps)

		snap.Kinds = append(snap.Kinds, Kind{
			Benchmark:           g.benchmark,
			Config:              g.config,
			Cells:               reps,
			WallSeconds:         time.Duration(ns).Seconds(),
			CellsPerSecond:      cellsPerSec,
			SimulatedCycles:     simCycles,
			CyclesPerWallSecond: cyclesPerWs,
			AllocsPerCell:       allocs,
		})
		snap.Cells += reps
		totalNs += ns
		totalAllocs += allocs * float64(reps)
	}
	snap.WallSeconds = time.Duration(totalNs).Seconds()
	if snap.WallSeconds > 0 {
		// Totals are wall-weighted combinations of the per-kind rates, so
		// they stay consistent with the rows they aggregate.
		var cellRate, cycRate float64
		for _, k := range snap.Kinds {
			cellRate += k.CellsPerSecond * k.WallSeconds
			cycRate += k.CyclesPerWallSecond * k.WallSeconds
		}
		snap.CellsPerSecond = cellRate / snap.WallSeconds
		snap.CyclesPerWallSecond = cycRate / snap.WallSeconds
	}
	if snap.Cells > 0 {
		snap.AllocsPerCell = totalAllocs / float64(snap.Cells)
	}
	return snap, nil
}

func load(path string) (*Snapshot, error) {
	buf, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s Snapshot
	if err := json.Unmarshal(buf, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	if s.Schema != 1 {
		return nil, fmt.Errorf("%s: unsupported schema %d", path, s.Schema)
	}
	return &s, nil
}

// compare gates the fresh measurement against a baseline snapshot. Only
// total cells/s is gating — per-kind rates at short scale are too noisy
// to fail on individually — but every kind's delta is printed so a real
// regression is attributable at a glance.
func compare(base, cur *Snapshot, threshold float64, path string) error {
	fmt.Printf("against %s (date %s, %.2f cells/s):\n", path, base.Date, base.CellsPerSecond)
	byKey := make(map[string]Kind, len(base.Kinds))
	for _, k := range base.Kinds {
		byKey[k.Benchmark+"/"+k.Config] = k
	}
	for _, k := range cur.Kinds {
		if b, ok := byKey[k.Benchmark+"/"+k.Config]; ok && b.CellsPerSecond > 0 {
			fmt.Printf("  %-16s %8.2f -> %8.2f cells/s (%+.1f%%)\n",
				k.Benchmark+"/"+k.Config, b.CellsPerSecond, k.CellsPerSecond,
				100*(k.CellsPerSecond/b.CellsPerSecond-1))
		}
	}
	if base.CellsPerSecond <= 0 {
		return fmt.Errorf("%s: baseline has no cells/s to compare against", path)
	}
	ratio := cur.CellsPerSecond / base.CellsPerSecond
	fmt.Printf("  total            %8.2f -> %8.2f cells/s (%+.1f%%), gate at -%.0f%%\n",
		base.CellsPerSecond, cur.CellsPerSecond, 100*(ratio-1), 100*threshold)
	if ratio < 1-threshold {
		return fmt.Errorf("cells/s regressed %.1f%% (limit %.0f%%) vs %s",
			100*(1-ratio), 100*threshold, path)
	}
	return nil
}
