// Command xeond is the experiment daemon: the simulation engine behind a
// stdlib-only HTTP+JSON API (internal/server). Start it once, point any
// number of clients — cmd/xeonctl, curl, CI — at it, and identical cells
// across all of them cost one simulation: in-flight duplicates share a
// computation (core.Dedupe), finished cells come from the shared run
// cache, and a global gate bounds total simulation concurrency.
//
//	xeond -addr 127.0.0.1:7788 -cache-dir ~/.cache/xeonomp \
//	      -journal-dir /var/lib/xeond/journals
//
// Endpoints (see ARCHITECTURE.md, "The experiment server"):
//
//	GET  /healthz                              liveness
//	GET  /metrics                              obs metric registry (JSON)
//	POST /api/v1/cell                          one cell, synchronous
//	POST /api/v1/study                         submit a study job (202)
//	GET  /api/v1/study                         list jobs
//	GET  /api/v1/study/{id}                    job status
//	DELETE /api/v1/study/{id}                  cancel a job
//	GET  /api/v1/study/{id}/artifacts/{name}   canonical artifact bytes
//	GET  /progress/{id}                        NDJSON progress stream
//
// Artifact responses are byte-identical to the files a local
// `xeonchar -export-json` writes for the same study and options — the
// server-smoke CI job diffs them against testdata/golden on every push.
//
// -addr supports ":0" for an ephemeral port; -addr-file then publishes
// the bound address for scripts. SIGINT/SIGTERM drain cleanly: running
// studies are canceled between cells and their journals keep the
// completed tail, so resubmitting the same request after a restart
// resumes instead of recomputing.
//
// With -shard, the daemon becomes a frontend that executes no cells
// itself: each cell is routed to one of the given worker daemons by its
// runcache content address (cache affinity), with bounded in-flight
// cells per worker and failover to the next healthy worker when one
// drops (internal/shard). The frontend keeps its own cache and journals
// over the sharded backend, so resume and warm reruns work exactly as
// in single-daemon mode, and artifacts stay byte-identical:
//
//	xeond -addr :7701 & xeond -addr :7702 &          # workers
//	xeond -addr :7788 -shard http://127.0.0.1:7701,http://127.0.0.1:7702
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"xeonomp/internal/api"
	"xeonomp/internal/core"
	"xeonomp/internal/runcache"
	"xeonomp/internal/server"
	"xeonomp/internal/shard"
)

func main() {
	var (
		addr        = flag.String("addr", "127.0.0.1:7788", "listen address (use :0 for an ephemeral port)")
		addrFile    = flag.String("addr-file", "", "write the bound listen address to this file once serving")
		cacheDir    = flag.String("cache-dir", "", "persistent run-cache directory (empty: in-memory cache only)")
		journalDir  = flag.String("journal-dir", "", "per-study journal directory (empty: no journals, no resume)")
		workers     = flag.Int("workers", 0, "simulation concurrency across all requests (0: GOMAXPROCS)")
		maxCells    = flag.Int("max-cells", 0, "per-request cell budget; larger studies get 429 (0: 256)")
		maxStudies  = flag.Int("max-studies", 0, "concurrent study jobs; excess submissions get 429 (0: 4)")
		maxScale    = flag.Float64("max-scale", 0, "largest accepted per-request scale (0: 1.0)")
		shards      = flag.String("shard", "", "comma-separated worker xeond base URLs; run as a sharding frontend instead of simulating locally")
		shardFlight = flag.Int("shard-inflight", 0, "in-flight cells per worker in -shard mode (0: 4)")
	)
	flag.Parse()
	if err := run(*addr, *addrFile, *cacheDir, *journalDir, *shards, *workers, *maxCells, *maxStudies, *shardFlight, *maxScale); err != nil {
		fmt.Fprintln(os.Stderr, "xeond:", err)
		os.Exit(1)
	}
}

// shardBackend builds the frontend execution path for -shard: cells go
// to remote workers with cache affinity and failover, and the frontend's
// own cache/journal tier is layered over it (core.Cached) so resume and
// warm reruns never leave this daemon. The server adds Dedupe and Gate
// on top, completing Dedupe(Gate(Cached(Shard))).
func shardBackend(list string, inflight int) (core.Backend, error) {
	var remotes []*shard.Remote
	for _, u := range strings.Split(list, ",") {
		if u = strings.TrimSpace(u); u != "" {
			remotes = append(remotes, shard.NewRemote(api.NewClient(u)))
		}
	}
	var opts []shard.Option
	if inflight > 0 {
		opts = append(opts, shard.WithInflight(inflight))
	}
	s, err := shard.New(remotes, opts...)
	if err != nil {
		return nil, err
	}
	return core.Cached(s), nil
}

func run(addr, addrFile, cacheDir, journalDir, shards string, workers, maxCells, maxStudies, shardFlight int, maxScale float64) error {
	cache, err := runcache.New(0, cacheDir)
	if err != nil {
		return err
	}
	var backend core.Backend
	if shards != "" {
		if backend, err = shardBackend(shards, shardFlight); err != nil {
			return err
		}
	}
	srv := server.New(server.Config{
		Backend:              backend,
		Cache:                cache,
		JournalDir:           journalDir,
		Workers:              workers,
		MaxCellsPerRequest:   maxCells,
		MaxConcurrentStudies: maxStudies,
		MaxScale:             maxScale,
	})
	defer func() {
		// Shutdown path; journal-close errors land on stderr below.
		if cerr := srv.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "xeond: close:", cerr)
		}
	}()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "xeond: serving on", bound)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "xeond: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}
