// Command xeond is the experiment daemon: the simulation engine behind a
// stdlib-only HTTP+JSON API (internal/server). Start it once, point any
// number of clients — cmd/xeonctl, curl, CI — at it, and identical cells
// across all of them cost one simulation: in-flight duplicates share a
// computation (core.Dedupe), finished cells come from the shared run
// cache, and a global gate bounds total simulation concurrency.
//
//	xeond -addr 127.0.0.1:7788 -cache-dir ~/.cache/xeonomp \
//	      -journal-dir /var/lib/xeond/journals
//
// Endpoints (see ARCHITECTURE.md, "The experiment server"):
//
//	GET  /healthz                              liveness
//	GET  /metrics                              obs metric registry (JSON)
//	POST /api/v1/cell                          one cell, synchronous
//	POST /api/v1/study                         submit a study job (202)
//	GET  /api/v1/study                         list jobs
//	GET  /api/v1/study/{id}                    job status
//	DELETE /api/v1/study/{id}                  cancel a job
//	GET  /api/v1/study/{id}/artifacts/{name}   canonical artifact bytes
//	GET  /progress/{id}                        NDJSON progress stream
//
// Artifact responses are byte-identical to the files a local
// `xeonchar -export-json` writes for the same study and options — the
// server-smoke CI job diffs them against testdata/golden on every push.
//
// -addr supports ":0" for an ephemeral port; -addr-file then publishes
// the bound address for scripts. SIGINT/SIGTERM drain cleanly: running
// studies are canceled between cells and their journals keep the
// completed tail, so resubmitting the same request after a restart
// resumes instead of recomputing.
package main

import (
	"context"
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xeonomp/internal/runcache"
	"xeonomp/internal/server"
)

func main() {
	var (
		addr       = flag.String("addr", "127.0.0.1:7788", "listen address (use :0 for an ephemeral port)")
		addrFile   = flag.String("addr-file", "", "write the bound listen address to this file once serving")
		cacheDir   = flag.String("cache-dir", "", "persistent run-cache directory (empty: in-memory cache only)")
		journalDir = flag.String("journal-dir", "", "per-study journal directory (empty: no journals, no resume)")
		workers    = flag.Int("workers", 0, "simulation concurrency across all requests (0: GOMAXPROCS)")
		maxCells   = flag.Int("max-cells", 0, "per-request cell budget; larger studies get 429 (0: 256)")
		maxStudies = flag.Int("max-studies", 0, "concurrent study jobs; excess submissions get 429 (0: 4)")
		maxScale   = flag.Float64("max-scale", 0, "largest accepted per-request scale (0: 1.0)")
	)
	flag.Parse()
	if err := run(*addr, *addrFile, *cacheDir, *journalDir, *workers, *maxCells, *maxStudies, *maxScale); err != nil {
		fmt.Fprintln(os.Stderr, "xeond:", err)
		os.Exit(1)
	}
}

func run(addr, addrFile, cacheDir, journalDir string, workers, maxCells, maxStudies int, maxScale float64) error {
	cache, err := runcache.New(0, cacheDir)
	if err != nil {
		return err
	}
	srv := server.New(server.Config{
		Cache:                cache,
		JournalDir:           journalDir,
		Workers:              workers,
		MaxCellsPerRequest:   maxCells,
		MaxConcurrentStudies: maxStudies,
		MaxScale:             maxScale,
	})
	defer func() {
		// Shutdown path; journal-close errors land on stderr below.
		if cerr := srv.Close(); cerr != nil {
			fmt.Fprintln(os.Stderr, "xeond: close:", cerr)
		}
	}()

	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	bound := ln.Addr().String()
	if addrFile != "" {
		if err := os.WriteFile(addrFile, []byte(bound+"\n"), 0o644); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, "xeond: serving on", bound)

	httpSrv := &http.Server{
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 10 * time.Second,
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	errc := make(chan error, 1)
	go func() { errc <- httpSrv.Serve(ln) }()

	select {
	case err := <-errc:
		return err
	case <-ctx.Done():
	}
	fmt.Fprintln(os.Stderr, "xeond: draining")
	shutCtx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	return httpSrv.Shutdown(shutCtx)
}
