// Command xeonchar regenerates the paper's tables and figures on the
// simulated two-way dual-core Hyper-Threaded Xeon SMP.
//
// Usage:
//
//	xeonchar -all                 # everything (Table 1/2, Figures 2-5, Section 3)
//	xeonchar -fig 3               # one figure (2, 3, 4 or 5)
//	xeonchar -table 2             # one table (1 or 2)
//	xeonchar -lmbench             # the Section 3 LMbench calibration
//	xeonchar -scale 0.25 -fig 2   # quicker, smaller instruction budgets
//	xeonchar -csv -fig 3          # CSV instead of aligned text
//
// Long regenerations are cacheable, resumable, and observable:
//
//	xeonchar -all -cache-dir .xeonchar-cache   # warm second run is mostly lookups
//	xeonchar -all -journal run.jsonl           # record every completed cell
//	xeonchar -all -journal run.jsonl -resume   # pick up an interrupted run
//	xeonchar -all -progress 5s                 # progress/ETA lines on stderr
//	xeonchar -all -trace-out trace.json        # Chrome trace (chrome://tracing, Perfetto)
//	xeonchar -all -metrics-out metrics.json    # registry snapshot (cache traffic, rates)
//	xeonchar -all -cpuprofile cpu.pprof        # CPU profile with per-cell pprof labels
//
// Ctrl-C cancels between cells: the journal keeps every completed cell
// with a clean tail, and the trace/metrics files are still written.
//
// Paper-fidelity regression (see internal/golden and EXPERIMENTS.md):
//
//	xeonchar -update-golden -scale 0.1         # regenerate testdata/golden
//	xeonchar -check testdata/golden -scale 0.1 # fail on any drifted paper metric
//	xeonchar -export-json out -scale 0.1       # write the artifacts elsewhere
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"runtime"
	"runtime/pprof"
	"syscall"
	"time"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/journal"
	"xeonomp/internal/lmbench"
	"xeonomp/internal/machine"
	"xeonomp/internal/obs"
	"xeonomp/internal/profiles"
	"xeonomp/internal/report"
	"xeonomp/internal/runcache"
	"xeonomp/internal/sched"
	"xeonomp/internal/stats"
	"xeonomp/internal/units"
)

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "xeonchar:", err)
		os.Exit(1)
	}
}

// run is the whole program behind main. Everything that must happen on the
// way out — closing the journal, stopping the CPU profile, writing the
// trace and metrics files — is a defer here, so both the error path and
// Ctrl-C cancellation (which unwinds through the study's context, not
// os.Exit) leave complete files behind.
func run() (err error) {
	var (
		fig     = flag.Int("fig", 0, "figure to regenerate (2, 3, 4, 5)")
		table   = flag.Int("table", 0, "table to regenerate (1, 2)")
		all     = flag.Bool("all", false, "regenerate every table and figure")
		lmb     = flag.Bool("lmbench", false, "run the Section 3 LMbench calibration")
		scale   = flag.Float64("scale", 1.0, "instruction-budget scale factor")
		seed    = flag.Uint64("seed", 1, "workload seed (trial number)")
		policy  = flag.String("policy", "alternate", "thread placement: alternate, block, round-robin, symbiotic")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outdir  = flag.String("outdir", "", "also write each table as a CSV file into this directory")
		svgdir  = flag.String("svgdir", "", "also render Figures 3 and 5 as SVG into this directory")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers for the studies")
		jsonOut = flag.String("json", "", "write the single-program study as JSON to this file")

		exportJSON = flag.String("export-json", "", "run every study and write golden JSON artifacts into this directory")
		checkDir   = flag.String("check", "", "run every study and compare against the golden artifacts in this directory, failing on drift")
		updateGold = flag.Bool("update-golden", false, "regenerate the checked-in golden artifacts under "+goldenDir)
		machCfg    = flag.String("machine", "", "load the platform from a JSON machine config (see machine.Config.WriteJSON)")
		warmup     = flag.Float64("warmup", 0.35, "fraction of the run excluded from counters")
		phases     = flag.String("phases", "", "print a VTune-style phase time series for the named benchmark (e.g. CG)")
		archStr    = flag.String("arch", string(config.CMT), "architecture for -phases (Table-1 name, e.g. \"CMT\")")

		cacheDir  = flag.String("cache-dir", "", "persist the run cache to this directory (warm reruns become lookups)")
		cacheSize = flag.Int("cache-size", 0, "in-memory run-cache entries (0 = default 4096, negative disables caching)")
		jpath     = flag.String("journal", "", "append every completed cell to this JSONL run journal")
		resume    = flag.Bool("resume", false, "replay the -journal file before running, skipping already-completed cells")
		progIvl   = flag.Duration("progress", 10*time.Second, "progress-report interval on stderr (0 disables)")

		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON of study/cell spans to this file (chrome://tracing, Perfetto)")
		metricsOut = flag.String("metrics-out", "", "write a JSON snapshot of the obs metric registry to this file on exit")
		cpuProfile = flag.String("cpuprofile", "", "write a CPU profile to this file; samples carry per-cell pprof labels")
	)
	flag.Parse()

	if *phases == "" && *exportJSON == "" && *checkDir == "" && !*updateGold &&
		!*all && *fig == 0 && *table == 0 && !*lmb {
		flag.Usage()
		os.Exit(2)
	}
	if *resume && *jpath == "" {
		fmt.Fprintln(os.Stderr, "xeonchar: -resume requires -journal")
		os.Exit(2)
	}
	var pol sched.Policy
	switch *policy {
	case "alternate":
		pol = sched.Alternate
	case "block":
		pol = sched.Block
	case "round-robin":
		pol = sched.RoundRobin
	case "symbiotic":
		pol = sched.Symbiotic
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	// Ctrl-C / SIGTERM cancel the context; the studies stop between cells
	// and the deferred writers below still run.
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *traceOut != "" {
		obs.SetTracer(obs.NewTracer())
		defer func() {
			if werr := writeTraceFile(*traceOut); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	if *metricsOut != "" {
		defer func() {
			if werr := writeMetricsFile(*metricsOut); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	if *cpuProfile != "" {
		f, cerr := os.Create(*cpuProfile)
		if cerr != nil {
			return cerr
		}
		if perr := pprof.StartCPUProfile(f); perr != nil {
			_ = f.Close() // the profile error is the one worth reporting
			return perr
		}
		defer func() {
			pprof.StopCPUProfile()
			if cerr := f.Close(); cerr != nil && err == nil {
				err = cerr
			}
		}()
	}

	optFns := []core.Option{
		core.WithScale(*scale),
		core.WithSeed(*seed),
		core.WithWorkers(*workers),
		core.WithWarmupFrac(*warmup),
		core.WithPolicy(pol),
	}
	if *machCfg != "" {
		f, err := os.Open(*machCfg)
		if err != nil {
			return err
		}
		mc, err := machine.LoadConfig(f)
		_ = f.Close() // read-only; the load error is the one that matters
		if err != nil {
			return err
		}
		optFns = append(optFns, core.WithMachine(&mc))
	}

	var cache *runcache.Cache
	if *cacheSize >= 0 {
		c, err := runcache.New(*cacheSize, *cacheDir)
		if err != nil {
			return err
		}
		cache = c
		optFns = append(optFns, core.WithCache(cache))
	}
	if *jpath != "" {
		if !*resume {
			// Without -resume a journal records this invocation only.
			if err := os.Remove(*jpath); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		jn, err := journal.Open(*jpath)
		if err != nil {
			return err
		}
		defer func() {
			if cerr := jn.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "xeonchar: closing journal:", cerr)
			}
		}()
		if *resume {
			fmt.Fprintf(os.Stderr, "resuming: %d completed cells replayed from %s", jn.Len(), *jpath)
			if n := jn.Skipped(); n > 0 {
				fmt.Fprintf(os.Stderr, " (%d corrupt line(s) discarded)", n)
			}
			fmt.Fprintln(os.Stderr)
		}
		optFns = append(optFns, core.WithJournal(jn))
	}
	if *progIvl > 0 {
		prog := journal.NewProgress(os.Stderr, *progIvl)
		optFns = append(optFns, core.WithProgress(prog))
		defer func() {
			prog.Finish()
			if s := cache.Stats(); s.Hits()+s.Misses > 0 {
				fmt.Fprintf(os.Stderr, "run cache: %d mem hits, %d disk hits, %d misses (%.1f%% hit rate), %d evictions\n",
					s.MemHits, s.DiskHits, s.Misses, 100*s.HitRate(), s.Evictions)
			}
		}()
	}
	opt, err := core.NewOptions(optFns...)
	if err != nil {
		return err
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			return err
		}
	}
	emit := func(t *report.Table) error {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
		if *outdir != "" {
			name := sanitize(t.Title)
			if err := os.WriteFile(filepath.Join(*outdir, name+".csv"), []byte(t.CSV()), 0o644); err != nil {
				return err
			}
			j, err := t.JSON()
			if err != nil {
				return err
			}
			if err := os.WriteFile(filepath.Join(*outdir, name+".json"), j, 0o644); err != nil {
				return err
			}
		}
		return nil
	}

	if *phases != "" {
		return runPhases(ctx, *phases, *archStr, opt, emit)
	}

	if *exportJSON != "" || *checkDir != "" || *updateGold {
		return runGolden(ctx, opt, *exportJSON, *checkDir, *updateGold)
	}

	if *all || *lmb {
		if err := runLmbench(emit); err != nil {
			return err
		}
	}
	if *all || *table == 1 {
		if err := emit(core.Table1Report()); err != nil {
			return err
		}
	}

	var single *core.SingleStudy
	needSingle := *all || *fig == 2 || *fig == 3 || *table == 2 || *jsonOut != ""
	if needSingle {
		fmt.Fprintf(os.Stderr, "running single-program study (6 benchmarks x 8 configurations, scale %.2f)...\n", *scale)
		single = core.NewSingleStudy()
		if err := single.Run(ctx, opt); err != nil {
			return err
		}
	}
	if *all || *fig == 2 {
		tables, err := single.Figure2Tables()
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := emit(t); err != nil {
				return err
			}
		}
	}
	if *all || *fig == 3 {
		t, err := single.Figure3Table()
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
		if *svgdir != "" {
			if err := writeFigure3SVG(*svgdir, single); err != nil {
				return err
			}
		}
	}
	if *all || *table == 2 {
		t, err := single.Table2Report()
		if err != nil {
			return err
		}
		if err := emit(t); err != nil {
			return err
		}
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			return err
		}
		if err := single.WriteJSON(f); err != nil {
			_ = f.Close() // the write error is the one worth reporting
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
	}
	if *all || *fig == 4 {
		fmt.Fprintf(os.Stderr, "running multi-program study (3 workloads x 8 configurations)...\n")
		pairs := core.NewPairStudy()
		if err := pairs.Run(ctx, opt); err != nil {
			return err
		}
		tables, err := pairs.Figure4Tables()
		if err != nil {
			return err
		}
		for _, t := range tables {
			if err := emit(t); err != nil {
				return err
			}
		}
	}
	if *all || *fig == 5 {
		fmt.Fprintf(os.Stderr, "running cross-product study (21 pairs x 7 configurations)...\n")
		cross := core.NewCrossStudy()
		if err := cross.Run(ctx, opt); err != nil {
			return err
		}
		fmt.Println(cross.Figure5Plot())
		if *svgdir != "" {
			if err := writeFigure5SVG(*svgdir, cross); err != nil {
				return err
			}
		}
	}
	return nil
}

// writeTraceFile dumps the process tracer's spans as Chrome trace JSON.
func writeTraceFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.CurrentTracer().WriteTrace(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// writeMetricsFile dumps the default metric registry as JSON.
func writeMetricsFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := obs.Default.WriteJSON(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

func runLmbench(emit func(*report.Table) error) error {
	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		return err
	}
	r, err := lmbench.Measure(m)
	if err != nil {
		return err
	}
	t := report.NewTable("Section 3 — LMbench calibration (paper targets in parentheses)",
		"measurement", "simulated", "paper")
	t.Add("L1 latency", fmt.Sprintf("%.2f ns", r.L1Ns), "1.43 ns")
	t.Add("L2 latency", fmt.Sprintf("%.2f ns", r.L2Ns), "10.6 ns")
	t.Add("memory latency", fmt.Sprintf("%.2f ns", r.MemNs), "136.85 ns")
	t.Add("read bandwidth, 1 chip", fmt.Sprintf("%.2f GB/s", r.ReadBW1/units.GB), "3.57 GB/s")
	t.Add("write bandwidth, 1 chip", fmt.Sprintf("%.2f GB/s", r.WriteBW1/units.GB), "1.77 GB/s")
	t.Add("read bandwidth, 2 chips", fmt.Sprintf("%.2f GB/s", r.ReadBW2/units.GB), "4.43 GB/s")
	t.Add("write bandwidth, 2 chips", fmt.Sprintf("%.2f GB/s", r.WriteBW2/units.GB), "2.6 GB/s")
	return emit(t)
}

// runPhases runs one benchmark with the counter sampler attached and prints
// the metric time series — the phase behaviour view the paper's VTune
// methodology produces.
func runPhases(ctx context.Context, bench, arch string, opt core.Options, emit func(*report.Table) error) error {
	prof, err := profiles.ByName(bench)
	if err != nil {
		return err
	}
	cfg, err := config.ByArch(config.Arch(arch))
	if err != nil {
		return err
	}
	if opt.SampleInterval <= 0 {
		opt.SampleInterval = 500_000
	}
	res, err := core.RunSingleContext(ctx, prof, cfg, opt)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("%s on %s — %d-cycle sampling windows", bench, cfg.Name, opt.SampleInterval),
		"window", "cycles", "CPI", "L1 miss", "L2 miss", "BP %", "stall %", "pf %")
	for i, s := range res.Samples {
		m := s.Metrics()
		t.AddF(i, s.End-s.Start, m.CPI, m.L1MissRate, m.L2MissRate, m.BranchPredRate, m.StalledPct, m.PrefetchBusPct)
	}
	return emit(t)
}

// sanitize turns a table title into a file name.
func sanitize(title string) string {
	out := make([]rune, 0, len(title))
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == '-' || r == '.':
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "table"
	}
	if len(out) > 60 {
		out = out[:60]
	}
	return string(out)
}

// writeFigure3SVG renders the speedup bars as figure3.svg.
func writeFigure3SVG(dir string, s *core.SingleStudy) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var seriesNames []string
	for _, c := range s.Configs {
		if c.Arch != config.Serial {
			seriesNames = append(seriesNames, c.Name)
		}
	}
	values := make([][]float64, len(s.Benchmarks))
	for bi, bn := range s.Benchmarks {
		for _, cn := range seriesNames {
			v, err := s.Speedup(bn, cn)
			if err != nil {
				return err
			}
			values[bi] = append(values[bi], v)
		}
	}
	svg, err := report.BarChartSVG("Figure 3 — Speedup over serial", s.Benchmarks, seriesNames, values)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "figure3.svg"), []byte(svg), 0o644)
}

// writeFigure5SVG renders the cross-product boxes as figure5.svg.
func writeFigure5SVG(dir string, s *core.CrossStudy) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var labels []string
	var boxes []stats.BoxPlot
	for _, cfg := range s.Configs {
		labels = append(labels, cfg.Name)
		boxes = append(boxes, s.Boxes[cfg.Name])
	}
	svg, err := report.BoxPlotSVG("Figure 5 — Multi-programmed pair speedups", labels, boxes)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "figure5.svg"), []byte(svg), 0o644)
}
