// Command xeonchar regenerates the paper's tables and figures on the
// simulated two-way dual-core Hyper-Threaded Xeon SMP.
//
// Usage:
//
//	xeonchar -all                 # everything (Table 1/2, Figures 2-5, Section 3)
//	xeonchar -fig 3               # one figure (2, 3, 4 or 5)
//	xeonchar -table 2             # one table (1 or 2)
//	xeonchar -lmbench             # the Section 3 LMbench calibration
//	xeonchar -scale 0.25 -fig 2   # quicker, smaller instruction budgets
//	xeonchar -csv -fig 3          # CSV instead of aligned text
//
// Long regenerations are cacheable and resumable:
//
//	xeonchar -all -cache-dir .xeonchar-cache   # warm second run is mostly lookups
//	xeonchar -all -journal run.jsonl           # record every completed cell
//	xeonchar -all -journal run.jsonl -resume   # pick up an interrupted run
//	xeonchar -all -progress 5s                 # progress/ETA lines on stderr
//
// Paper-fidelity regression (see internal/golden and EXPERIMENTS.md):
//
//	xeonchar -update-golden -scale 0.1         # regenerate testdata/golden
//	xeonchar -check testdata/golden -scale 0.1 # fail on any drifted paper metric
//	xeonchar -export-json out -scale 0.1       # write the artifacts elsewhere
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"runtime"
	"time"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/journal"
	"xeonomp/internal/lmbench"
	"xeonomp/internal/machine"
	"xeonomp/internal/profiles"
	"xeonomp/internal/report"
	"xeonomp/internal/runcache"
	"xeonomp/internal/sched"
	"xeonomp/internal/stats"
	"xeonomp/internal/units"
)

func main() {
	var (
		fig     = flag.Int("fig", 0, "figure to regenerate (2, 3, 4, 5)")
		table   = flag.Int("table", 0, "table to regenerate (1, 2)")
		all     = flag.Bool("all", false, "regenerate every table and figure")
		lmb     = flag.Bool("lmbench", false, "run the Section 3 LMbench calibration")
		scale   = flag.Float64("scale", 1.0, "instruction-budget scale factor")
		seed    = flag.Uint64("seed", 1, "workload seed (trial number)")
		policy  = flag.String("policy", "alternate", "thread placement: alternate, block, round-robin, symbiotic")
		csv     = flag.Bool("csv", false, "emit CSV instead of aligned text")
		outdir  = flag.String("outdir", "", "also write each table as a CSV file into this directory")
		svgdir  = flag.String("svgdir", "", "also render Figures 3 and 5 as SVG into this directory")
		workers = flag.Int("workers", runtime.GOMAXPROCS(0), "parallel simulation workers for the studies")
		jsonOut = flag.String("json", "", "write the single-program study as JSON to this file")

		exportJSON = flag.String("export-json", "", "run every study and write golden JSON artifacts into this directory")
		checkDir   = flag.String("check", "", "run every study and compare against the golden artifacts in this directory, failing on drift")
		updateGold = flag.Bool("update-golden", false, "regenerate the checked-in golden artifacts under "+goldenDir)
		machCfg    = flag.String("machine", "", "load the platform from a JSON machine config (see machine.Config.WriteJSON)")
		warmup     = flag.Float64("warmup", 0.35, "fraction of the run excluded from counters")
		phases     = flag.String("phases", "", "print a VTune-style phase time series for the named benchmark (e.g. CG)")
		archStr    = flag.String("arch", string(config.CMT), "architecture for -phases (Table-1 name, e.g. \"CMT\")")

		cacheDir  = flag.String("cache-dir", "", "persist the run cache to this directory (warm reruns become lookups)")
		cacheSize = flag.Int("cache-size", 0, "in-memory run-cache entries (0 = default 4096, negative disables caching)")
		jpath     = flag.String("journal", "", "append every completed cell to this JSONL run journal")
		resume    = flag.Bool("resume", false, "replay the -journal file before running, skipping already-completed cells")
		progIvl   = flag.Duration("progress", 10*time.Second, "progress-report interval on stderr (0 disables)")
	)
	flag.Parse()

	opt := core.DefaultOptions()
	opt.Workers = *workers
	opt.Scale = *scale
	if *machCfg != "" {
		f, err := os.Open(*machCfg)
		if err != nil {
			fail(err)
		}
		mc, err := machine.LoadConfig(f)
		_ = f.Close() // read-only; the load error is the one that matters
		if err != nil {
			fail(err)
		}
		opt.Machine = &mc
	}
	opt.Seed = *seed
	opt.WarmupFrac = *warmup

	if *cacheSize >= 0 {
		cache, err := runcache.New(*cacheSize, *cacheDir)
		if err != nil {
			fail(err)
		}
		opt.Cache = cache
	}
	if *resume && *jpath == "" {
		fmt.Fprintln(os.Stderr, "xeonchar: -resume requires -journal")
		os.Exit(2)
	}
	if *jpath != "" {
		if !*resume {
			// Without -resume a journal records this invocation only.
			if err := os.Remove(*jpath); err != nil && !os.IsNotExist(err) {
				fail(err)
			}
		}
		jn, err := journal.Open(*jpath)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := jn.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "xeonchar: closing journal:", err)
			}
		}()
		if *resume {
			fmt.Fprintf(os.Stderr, "resuming: %d completed cells replayed from %s", jn.Len(), *jpath)
			if n := jn.Skipped(); n > 0 {
				fmt.Fprintf(os.Stderr, " (%d corrupt line(s) discarded)", n)
			}
			fmt.Fprintln(os.Stderr)
		}
		opt.Journal = jn
	}
	if *progIvl > 0 {
		opt.Progress = journal.NewProgress(os.Stderr, *progIvl)
		defer func() {
			opt.Progress.Finish()
			if s := opt.Cache.Stats(); s.Hits()+s.Misses > 0 {
				fmt.Fprintf(os.Stderr, "run cache: %d mem hits, %d disk hits, %d misses (%.1f%% hit rate), %d evictions\n",
					s.MemHits, s.DiskHits, s.Misses, 100*s.HitRate(), s.Evictions)
			}
		}()
	}
	switch *policy {
	case "alternate":
		opt.Policy = sched.Alternate
	case "block":
		opt.Policy = sched.Block
	case "round-robin":
		opt.Policy = sched.RoundRobin
	case "symbiotic":
		opt.Policy = sched.Symbiotic
	default:
		fmt.Fprintf(os.Stderr, "unknown policy %q\n", *policy)
		os.Exit(2)
	}

	if *outdir != "" {
		if err := os.MkdirAll(*outdir, 0o755); err != nil {
			fail(err)
		}
	}
	emit := func(t *report.Table) {
		if *csv {
			fmt.Print(t.CSV())
		} else {
			fmt.Println(t.String())
		}
		if *outdir != "" {
			name := sanitize(t.Title)
			if err := os.WriteFile(filepath.Join(*outdir, name+".csv"), []byte(t.CSV()), 0o644); err != nil {
				fail(err)
			}
			j, err := t.JSON()
			if err != nil {
				fail(err)
			}
			if err := os.WriteFile(filepath.Join(*outdir, name+".json"), j, 0o644); err != nil {
				fail(err)
			}
		}
	}

	if *phases != "" {
		if err := runPhases(*phases, *archStr, opt, emit); err != nil {
			fail(err)
		}
		return
	}

	if *exportJSON != "" || *checkDir != "" || *updateGold {
		if err := runGolden(opt, *exportJSON, *checkDir, *updateGold); err != nil {
			fail(err)
		}
		return
	}

	if !*all && *fig == 0 && *table == 0 && !*lmb {
		flag.Usage()
		os.Exit(2)
	}

	if *all || *lmb {
		if err := runLmbench(emit); err != nil {
			fail(err)
		}
	}
	if *all || *table == 1 {
		emit(core.Table1Report())
	}

	var single *core.SingleStudy
	needSingle := *all || *fig == 2 || *fig == 3 || *table == 2 || *jsonOut != ""
	if needSingle {
		fmt.Fprintf(os.Stderr, "running single-program study (6 benchmarks x 8 configurations, scale %.2f)...\n", *scale)
		var err error
		single, err = core.RunSingleStudy(opt)
		if err != nil {
			fail(err)
		}
	}
	if *all || *fig == 2 {
		tables, err := single.Figure2Tables()
		if err != nil {
			fail(err)
		}
		for _, t := range tables {
			emit(t)
		}
	}
	if *all || *fig == 3 {
		t, err := single.Figure3Table()
		if err != nil {
			fail(err)
		}
		emit(t)
		if *svgdir != "" {
			if err := writeFigure3SVG(*svgdir, single); err != nil {
				fail(err)
			}
		}
	}
	if *all || *table == 2 {
		t, err := single.Table2Report()
		if err != nil {
			fail(err)
		}
		emit(t)
	}
	if *jsonOut != "" {
		f, err := os.Create(*jsonOut)
		if err != nil {
			fail(err)
		}
		if err := single.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
	}
	if *all || *fig == 4 {
		fmt.Fprintf(os.Stderr, "running multi-program study (3 workloads x 8 configurations)...\n")
		pairs, err := core.RunPairStudy(opt)
		if err != nil {
			fail(err)
		}
		tables, err := pairs.Figure4Tables()
		if err != nil {
			fail(err)
		}
		for _, t := range tables {
			emit(t)
		}
	}
	if *all || *fig == 5 {
		fmt.Fprintf(os.Stderr, "running cross-product study (21 pairs x 7 configurations)...\n")
		cross, err := core.RunCrossStudy(opt)
		if err != nil {
			fail(err)
		}
		fmt.Println(cross.Figure5Plot())
		if *svgdir != "" {
			if err := writeFigure5SVG(*svgdir, cross); err != nil {
				fail(err)
			}
		}
	}
}

func runLmbench(emit func(*report.Table)) error {
	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		return err
	}
	r, err := lmbench.Measure(m)
	if err != nil {
		return err
	}
	t := report.NewTable("Section 3 — LMbench calibration (paper targets in parentheses)",
		"measurement", "simulated", "paper")
	t.Add("L1 latency", fmt.Sprintf("%.2f ns", r.L1Ns), "1.43 ns")
	t.Add("L2 latency", fmt.Sprintf("%.2f ns", r.L2Ns), "10.6 ns")
	t.Add("memory latency", fmt.Sprintf("%.2f ns", r.MemNs), "136.85 ns")
	t.Add("read bandwidth, 1 chip", fmt.Sprintf("%.2f GB/s", r.ReadBW1/units.GB), "3.57 GB/s")
	t.Add("write bandwidth, 1 chip", fmt.Sprintf("%.2f GB/s", r.WriteBW1/units.GB), "1.77 GB/s")
	t.Add("read bandwidth, 2 chips", fmt.Sprintf("%.2f GB/s", r.ReadBW2/units.GB), "4.43 GB/s")
	t.Add("write bandwidth, 2 chips", fmt.Sprintf("%.2f GB/s", r.WriteBW2/units.GB), "2.6 GB/s")
	emit(t)
	return nil
}

// runPhases runs one benchmark with the counter sampler attached and prints
// the metric time series — the phase behaviour view the paper's VTune
// methodology produces.
func runPhases(bench, arch string, opt core.Options, emit func(*report.Table)) error {
	prof, err := profiles.ByName(bench)
	if err != nil {
		return err
	}
	cfg, err := config.ByArch(config.Arch(arch))
	if err != nil {
		return err
	}
	if opt.SampleInterval <= 0 {
		opt.SampleInterval = 500_000
	}
	res, err := core.RunSingle(prof, cfg, opt)
	if err != nil {
		return err
	}
	t := report.NewTable(
		fmt.Sprintf("%s on %s — %d-cycle sampling windows", bench, cfg.Name, opt.SampleInterval),
		"window", "cycles", "CPI", "L1 miss", "L2 miss", "BP %", "stall %", "pf %")
	for i, s := range res.Samples {
		m := s.Metrics()
		t.AddF(i, s.End-s.Start, m.CPI, m.L1MissRate, m.L2MissRate, m.BranchPredRate, m.StalledPct, m.PrefetchBusPct)
	}
	emit(t)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "xeonchar:", err)
	os.Exit(1)
}

// sanitize turns a table title into a file name.
func sanitize(title string) string {
	out := make([]rune, 0, len(title))
	for _, r := range title {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			out = append(out, r)
		case r == ' ' || r == '-' || r == '.':
			out = append(out, '_')
		}
	}
	if len(out) == 0 {
		return "table"
	}
	if len(out) > 60 {
		out = out[:60]
	}
	return string(out)
}

// writeFigure3SVG renders the speedup bars as figure3.svg.
func writeFigure3SVG(dir string, s *core.SingleStudy) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var seriesNames []string
	for _, c := range s.Configs {
		if c.Arch != config.Serial {
			seriesNames = append(seriesNames, c.Name)
		}
	}
	values := make([][]float64, len(s.Benchmarks))
	for bi, bn := range s.Benchmarks {
		for _, cn := range seriesNames {
			v, err := s.Speedup(bn, cn)
			if err != nil {
				return err
			}
			values[bi] = append(values[bi], v)
		}
	}
	svg, err := report.BarChartSVG("Figure 3 — Speedup over serial", s.Benchmarks, seriesNames, values)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "figure3.svg"), []byte(svg), 0o644)
}

// writeFigure5SVG renders the cross-product boxes as figure5.svg.
func writeFigure5SVG(dir string, s *core.CrossStudy) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	var labels []string
	var boxes []stats.BoxPlot
	for _, cfg := range s.Configs {
		labels = append(labels, cfg.Name)
		boxes = append(boxes, s.Boxes[cfg.Name])
	}
	svg, err := report.BoxPlotSVG("Figure 5 — Multi-programmed pair speedups", labels, boxes)
	if err != nil {
		return err
	}
	return os.WriteFile(filepath.Join(dir, "figure5.svg"), []byte(svg), 0o644)
}
