package main

import (
	"context"
	"fmt"
	"os"
	"path/filepath"

	"xeonomp/internal/core"
	"xeonomp/internal/golden"
	"xeonomp/internal/lmbench"
	"xeonomp/internal/machine"
)

// goldenDir is where -update-golden writes and where CI checks; the
// checked-in artifacts are generated at -scale 0.1 (see Makefile
// update-golden) so the gate runs in CI time, not paper time.
const goldenDir = "testdata/golden"

// maxDriftLines caps the per-artifact drift listing: a perturbed formula
// moves hundreds of cells, and the first screenful names the failure.
const maxDriftLines = 25

// collectArtifacts runs every study the golden set covers — the Section-3
// LMbench calibration plus the single-program, fixed-pair and
// cross-product studies — and returns their artifacts. Caching and
// progress flow through opt exactly as for figure regeneration.
func collectArtifacts(ctx context.Context, opt core.Options) ([]*golden.Artifact, error) {
	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		return nil, err
	}
	r, err := lmbench.Measure(m)
	if err != nil {
		return nil, err
	}
	arts := []*golden.Artifact{
		// The same measurement is exported twice: once to diff against a
		// prior measurement (tight), once against the paper's targets
		// (wide); the golden file supplies the band either way.
		r.Artifact(lmbench.GoldenName, golden.Relative(1e-9)),
		r.Artifact(lmbench.PaperGoldenName, golden.Relative(0.05)),
	}

	studies := []struct {
		banner string
		study  core.Study
	}{
		{fmt.Sprintf("running single-program study (6 benchmarks x 8 configurations, scale %.2f)...", opt.Scale), core.NewSingleStudy()},
		{"running multi-program study (3 workloads x 8 configurations)...", core.NewPairStudy()},
		{"running cross-product study (21 pairs x 7 configurations)...", core.NewCrossStudy()},
	}
	for _, st := range studies {
		fmt.Fprintln(os.Stderr, st.banner)
		if err := st.study.Run(ctx, opt); err != nil {
			return nil, err
		}
		as, err := st.study.Artifacts()
		if err != nil {
			return nil, err
		}
		arts = append(arts, as...)
	}
	return arts, nil
}

// pinnedArtifacts are written verbatim on export/update instead of from a
// measurement: their golden values are paper constants, not prior runs.
func pinnedArtifacts() []*golden.Artifact {
	return []*golden.Artifact{lmbench.PaperTargets()}
}

// runGolden is the -export-json / -check / -update-golden entry point.
func runGolden(ctx context.Context, opt core.Options, exportDir, checkDir string, update bool) error {
	var stored []*golden.Artifact
	if checkDir != "" {
		// Load and provenance-check the golden set before spending study
		// time: a forgotten -scale should fail in milliseconds, not after
		// a full-scale regeneration.
		var err error
		stored, err = golden.LoadDir(checkDir)
		if err != nil {
			return fmt.Errorf("loading golden artifacts: %w (run -update-golden to create them)", err)
		}
		for _, g := range stored {
			if g.Scale != 0 && g.Scale != opt.Scale {
				return fmt.Errorf("golden artifact %s was generated at -scale %g; rerun with -scale %g or regenerate with -update-golden",
					g.Name, g.Scale, g.Scale)
			}
			if g.Seed != 0 && g.Seed != opt.Seed {
				return fmt.Errorf("golden artifact %s was generated at -seed %d; rerun with -seed %d or regenerate with -update-golden",
					g.Name, g.Seed, g.Seed)
			}
		}
	}
	live, err := collectArtifacts(ctx, opt)
	if err != nil {
		return err
	}
	var dirs []string
	if exportDir != "" {
		dirs = append(dirs, exportDir)
	}
	if update {
		dirs = append(dirs, goldenDir)
	}
	for _, dir := range dirs {
		if err := writeArtifacts(dir, live); err != nil {
			return err
		}
	}
	if checkDir != "" {
		return checkArtifacts(checkDir, stored, live)
	}
	return nil
}

// writeArtifacts stores the live set (with pinned artifacts substituted
// from their constants) canonically under dir.
func writeArtifacts(dir string, live []*golden.Artifact) error {
	pinned := map[string]*golden.Artifact{}
	for _, p := range pinnedArtifacts() {
		pinned[p.Name] = p
	}
	n := 0
	for _, a := range live {
		if p, ok := pinned[a.Name]; ok {
			a = p
		}
		if err := golden.Write(dir, a); err != nil {
			return err
		}
		n++
	}
	fmt.Fprintf(os.Stderr, "wrote %d golden artifact(s) to %s\n", n, dir)
	return nil
}

// checkArtifacts compares the live set against every artifact stored in
// dir, prints a drift report per artifact, and returns an error naming
// the failures (the CI gate's exit code).
func checkArtifacts(dir string, stored, live []*golden.Artifact) error {
	liveByName := map[string]*golden.Artifact{}
	for _, a := range live {
		liveByName[a.Name] = a
	}
	var failed []string
	for _, g := range stored {
		l, ok := liveByName[g.Name]
		if !ok {
			failed = append(failed, g.Name)
			fmt.Printf("%s: FAIL — stored in %s but no live study produces it; stale artifact?\n",
				g.Name, dir)
			continue
		}
		delete(liveByName, g.Name)
		rep, err := golden.Compare(g, l)
		if err != nil {
			return err
		}
		printReport(rep)
		if !rep.OK() {
			failed = append(failed, g.Name)
		}
	}
	for _, a := range live {
		if _, ok := liveByName[a.Name]; ok {
			failed = append(failed, a.Name)
			fmt.Printf("%s: FAIL — produced by the live run but missing from %s; run -update-golden and commit %s\n",
				a.Name, dir, filepath.Join(dir, golden.Filename(a.Name)))
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("golden check against %s failed for %d artifact(s): %v", dir, len(failed), failed)
	}
	fmt.Printf("golden check against %s: all %d artifact(s) within tolerance\n", dir, len(stored))
	return nil
}

// printReport prints a passing report as one line and a failing one as
// the drift table, truncated to the first maxDriftLines cells.
func printReport(r *golden.Report) {
	if r.OK() {
		fmt.Println(r.String())
		return
	}
	extra := 0
	show := *r
	if len(show.Drifts) > maxDriftLines {
		extra = len(show.Drifts) - maxDriftLines
		show.Drifts = show.Drifts[:maxDriftLines]
	}
	fmt.Println(show.String())
	if extra > 0 {
		fmt.Printf("  ... and %d more out-of-tolerance metric(s)\n", extra)
	}
}
