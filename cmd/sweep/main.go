// Command sweep runs the ablation studies called out in DESIGN.md: it
// re-runs the single-program characterization with one design parameter of
// the simulated machine changed, quantifying how much each mechanism
// contributes to the paper's observations.
//
//	sweep -ablation prefetch   # hardware prefetcher disabled
//	sweep -ablation bus        # FSB bandwidth halved
//	sweep -ablation l2         # L2 doubled to 2 MiB per core
//	sweep -ablation smt        # SMT resource partitioning removed
//	sweep -ablation policy     # block instead of alternating placement (pairs)
//	sweep -ablation all
//
// Ablations share every unablated baseline, so a run cache pays off even
// within one invocation; the same -cache-dir as cmd/xeonchar can be
// shared, and -journal/-resume make an interrupted sweep restartable.
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"xeonomp/internal/cache"
	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/journal"
	"xeonomp/internal/machine"
	"xeonomp/internal/profiles"
	"xeonomp/internal/report"
	"xeonomp/internal/runcache"
	"xeonomp/internal/sched"
	"xeonomp/internal/units"
)

// ablation describes one machine variant.
type ablation struct {
	name   string
	detail string
	mutate func(*machine.Config)
	policy *sched.Policy
}

func ablations() []ablation {
	block := sched.Block
	symb := sched.Symbiotic
	return []ablation{
		{
			name:   "prefetch",
			detail: "hardware prefetcher disabled",
			mutate: func(c *machine.Config) { c.PrefetchGate = -1 },
		},
		{
			name:   "bus",
			detail: "FSB bandwidth halved",
			mutate: func(c *machine.Config) { c.FSBBandwidth /= 2 },
		},
		{
			name:   "l2",
			detail: "L2 doubled to 2 MiB per core",
			mutate: func(c *machine.Config) { c.L2.Size = 2 * units.MiB },
		},
		{
			name:   "l2-random",
			detail: "L2 random replacement instead of LRU",
			mutate: func(c *machine.Config) { c.L2.Policy = cache.Random },
		},
		{
			name:   "smt",
			detail: "SMT buffer partitioning and port contention removed",
			mutate: func(c *machine.Config) {
				c.Lat.SMTSharedMLP = 1.0
				c.Lat.SMTClash = 0
			},
		},
		{
			name:   "policy",
			detail: "block placement instead of alternating (multi-program pairs)",
			mutate: func(c *machine.Config) {},
			policy: &block,
		},
		{
			name:   "symbiosis",
			detail: "demand-aware symbiotic placement for a 4-program mix",
			mutate: func(c *machine.Config) {},
			policy: &symb,
		},
	}
}

func main() {
	var (
		which = flag.String("ablation", "all", "prefetch, bus, l2, l2-random, smt, policy, symbiosis or all")
		scale = flag.Float64("scale", 0.5, "instruction-budget scale factor")

		cacheDir  = flag.String("cache-dir", "", "persist the run cache to this directory (shareable with cmd/xeonchar)")
		cacheSize = flag.Int("cache-size", 0, "in-memory run-cache entries (0 = default 4096, negative disables caching)")
		jpath     = flag.String("journal", "", "append every completed cell to this JSONL run journal")
		resume    = flag.Bool("resume", false, "replay the -journal file before running, skipping already-completed cells")
		progIvl   = flag.Duration("progress", 10*time.Second, "progress-report interval on stderr (0 disables)")
	)
	flag.Parse()

	base := core.DefaultOptions()
	base.Scale = *scale

	if *cacheSize >= 0 {
		c, err := runcache.New(*cacheSize, *cacheDir)
		if err != nil {
			fail(err)
		}
		base.Cache = c
	}
	if *resume && *jpath == "" {
		fmt.Fprintln(os.Stderr, "sweep: -resume requires -journal")
		os.Exit(2)
	}
	if *jpath != "" {
		if !*resume {
			if err := os.Remove(*jpath); err != nil && !os.IsNotExist(err) {
				fail(err)
			}
		}
		jn, err := journal.Open(*jpath)
		if err != nil {
			fail(err)
		}
		defer func() {
			if err := jn.Close(); err != nil {
				fmt.Fprintln(os.Stderr, "sweep: closing journal:", err)
			}
		}()
		if *resume {
			fmt.Fprintf(os.Stderr, "resuming: %d completed cells replayed from %s\n", jn.Len(), *jpath)
		}
		base.Journal = jn
	}
	if *progIvl > 0 {
		base.Progress = journal.NewProgress(os.Stderr, *progIvl)
		defer func() {
			base.Progress.Finish()
			if s := base.Cache.Stats(); s.Hits()+s.Misses > 0 {
				fmt.Fprintf(os.Stderr, "run cache: %d mem hits, %d disk hits, %d misses (%.1f%% hit rate)\n",
					s.MemHits, s.DiskHits, s.Misses, 100*s.HitRate())
			}
		}()
	}

	benches := []string{"CG", "MG", "LU"}
	cfgs := []config.Arch{config.CMT, config.CMPSMP, config.CMTSMP}

	for _, ab := range ablations() {
		if *which != "all" && *which != ab.name {
			continue
		}
		if ab.policy != nil {
			var err error
			if *ab.policy == sched.Symbiotic {
				err = runSymbiosisAblation(ab, base)
			} else {
				err = runPairAblation(ab, base)
			}
			if err != nil {
				fail(err)
			}
			continue
		}
		if err := runSingleAblation(ab, base, benches, cfgs); err != nil {
			fail(err)
		}
	}
}

// runSingleAblation compares per-benchmark speedups with and without the
// machine mutation.
func runSingleAblation(ab ablation, base core.Options, benches []string, archs []config.Arch) error {
	varCfg := machine.PaxvilleSMP()
	ab.mutate(&varCfg)
	variant := base
	variant.Machine = &varCfg

	headers := []string{"benchmark"}
	for _, a := range archs {
		headers = append(headers, string(a)+" base", string(a)+" "+ab.name)
	}
	t := report.NewTable(fmt.Sprintf("Ablation %q — %s (speedup over each run's own serial)", ab.name, ab.detail), headers...)

	for _, bn := range benches {
		prof, err := profiles.ByName(bn)
		if err != nil {
			return err
		}
		row := []any{bn}
		for _, a := range archs {
			cfg, err := config.ByArch(a)
			if err != nil {
				return err
			}
			for _, opt := range []core.Options{base, variant} {
				serial, err := core.SerialBaseline(prof, opt)
				if err != nil {
					return err
				}
				res, err := core.RunSingle(prof, cfg, opt)
				if err != nil {
					return err
				}
				row = append(row, core.Speedup(serial.WallCycles, res.WallCycles))
			}
		}
		t.AddF(row...)
	}
	fmt.Println(t.String())
	return nil
}

// runPairAblation compares the CG/FT pair under alternating vs block
// placement.
func runPairAblation(ab ablation, base core.Options) error {
	cg, err := profiles.ByName("CG")
	if err != nil {
		return err
	}
	ft, err := profiles.ByName("FT")
	if err != nil {
		return err
	}
	w := core.Pair(cg, ft)

	blockOpt := base
	blockOpt.Policy = *ab.policy

	t := report.NewTable(fmt.Sprintf("Ablation %q — %s", ab.name, ab.detail),
		"config", "program", "alternate speedup", "block speedup")
	baselines := map[string]int64{}
	for _, p := range w.Programs {
		b, err := core.SerialBaseline(p, base)
		if err != nil {
			return err
		}
		baselines[p.Name] = b.WallCycles
	}
	for _, arch := range []config.Arch{config.CMT, config.CMPSMP, config.CMTSMP} {
		cfg, err := config.ByArch(arch)
		if err != nil {
			return err
		}
		alt, err := core.Run(w, cfg, base)
		if err != nil {
			return err
		}
		blk, err := core.Run(w, cfg, blockOpt)
		if err != nil {
			return err
		}
		for gi, p := range w.Programs {
			t.AddF(cfg.Name, p.Name,
				core.Speedup(baselines[p.Name], alt.Programs[gi].Cycles),
				core.Speedup(baselines[p.Name], blk.Programs[gi].Cycles))
		}
	}
	fmt.Println(t.String())
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}

// runSymbiosisAblation compares alternate vs symbiotic placement for a
// four-program mix (two memory-heavy, two compute-light) on the full HT
// machine — the paper's future-work scheduler direction.
func runSymbiosisAblation(ab ablation, base core.Options) error {
	var w core.Workload
	for _, n := range []string{"MG", "EP", "SP", "EP"} {
		p, err := profiles.ByName(n)
		if err != nil {
			return err
		}
		w.Programs = append(w.Programs, p)
	}
	cfg, err := config.ByArch(config.CMTSMP)
	if err != nil {
		return err
	}
	symOpt := base
	symOpt.Policy = sched.Symbiotic

	t := report.NewTable(fmt.Sprintf("Ablation %q — %s", ab.name, ab.detail),
		"program", "alternate speedup", "symbiotic speedup")
	alt, err := core.Run(w, cfg, base)
	if err != nil {
		return err
	}
	sym, err := core.Run(w, cfg, symOpt)
	if err != nil {
		return err
	}
	for gi, p := range w.Programs {
		serial, err := core.SerialBaseline(p, base)
		if err != nil {
			return err
		}
		t.AddF(fmt.Sprintf("%s[%d]", p.Name, gi),
			core.Speedup(serial.WallCycles, alt.Programs[gi].Cycles),
			core.Speedup(serial.WallCycles, sym.Programs[gi].Cycles))
	}
	fmt.Println(t.String())
	return nil
}
