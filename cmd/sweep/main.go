// Command sweep runs the ablation studies called out in DESIGN.md: it
// re-runs the single-program characterization with one design parameter of
// the simulated machine changed, quantifying how much each mechanism
// contributes to the paper's observations.
//
//	sweep -ablation prefetch   # hardware prefetcher disabled
//	sweep -ablation bus        # FSB bandwidth halved
//	sweep -ablation l2         # L2 doubled to 2 MiB per core
//	sweep -ablation smt        # SMT resource partitioning removed
//	sweep -ablation policy     # block instead of alternating placement (pairs)
//	sweep -ablation all
//
// Ablations share every unablated baseline, so a run cache pays off even
// within one invocation; the same -cache-dir as cmd/xeonchar can be
// shared, and -journal/-resume make an interrupted sweep restartable.
// -trace-out and -metrics-out capture the same observability outputs as
// cmd/xeonchar; Ctrl-C cancels between cells with a clean journal tail.
package main

import (
	"context"
	"flag"
	"fmt"
	"io"
	"os"
	"os/signal"
	"syscall"
	"time"

	"xeonomp/internal/cache"
	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/journal"
	"xeonomp/internal/machine"
	"xeonomp/internal/obs"
	"xeonomp/internal/profiles"
	"xeonomp/internal/report"
	"xeonomp/internal/runcache"
	"xeonomp/internal/sched"
	"xeonomp/internal/units"
)

// ablation describes one machine variant.
type ablation struct {
	name   string
	detail string
	mutate func(*machine.Config)
	policy *sched.Policy
}

func ablations() []ablation {
	block := sched.Block
	symb := sched.Symbiotic
	return []ablation{
		{
			name:   "prefetch",
			detail: "hardware prefetcher disabled",
			mutate: func(c *machine.Config) { c.PrefetchGate = -1 },
		},
		{
			name:   "bus",
			detail: "FSB bandwidth halved",
			mutate: func(c *machine.Config) { c.FSBBandwidth /= 2 },
		},
		{
			name:   "l2",
			detail: "L2 doubled to 2 MiB per core",
			mutate: func(c *machine.Config) { c.L2.Size = 2 * units.MiB },
		},
		{
			name:   "l2-random",
			detail: "L2 random replacement instead of LRU",
			mutate: func(c *machine.Config) { c.L2.Policy = cache.Random },
		},
		{
			name:   "smt",
			detail: "SMT buffer partitioning and port contention removed",
			mutate: func(c *machine.Config) {
				c.Lat.SMTSharedMLP = 1.0
				c.Lat.SMTClash = 0
			},
		},
		{
			name:   "policy",
			detail: "block placement instead of alternating (multi-program pairs)",
			mutate: func(c *machine.Config) {},
			policy: &block,
		},
		{
			name:   "symbiosis",
			detail: "demand-aware symbiotic placement for a 4-program mix",
			mutate: func(c *machine.Config) {},
			policy: &symb,
		},
	}
}

func main() {
	if err := run(); err != nil {
		fmt.Fprintln(os.Stderr, "sweep:", err)
		os.Exit(1)
	}
}

// run is the whole program behind main; closing the journal and writing
// the trace/metrics files are defers here, so the error path and Ctrl-C
// cancellation leave complete files behind.
func run() (err error) {
	var (
		which = flag.String("ablation", "all", "prefetch, bus, l2, l2-random, smt, policy, symbiosis or all")
		scale = flag.Float64("scale", 0.5, "instruction-budget scale factor")

		cacheDir  = flag.String("cache-dir", "", "persist the run cache to this directory (shareable with cmd/xeonchar)")
		cacheSize = flag.Int("cache-size", 0, "in-memory run-cache entries (0 = default 4096, negative disables caching)")
		jpath     = flag.String("journal", "", "append every completed cell to this JSONL run journal")
		resume    = flag.Bool("resume", false, "replay the -journal file before running, skipping already-completed cells")
		progIvl   = flag.Duration("progress", 10*time.Second, "progress-report interval on stderr (0 disables)")

		traceOut   = flag.String("trace-out", "", "write a Chrome trace_event JSON of study/cell spans to this file (chrome://tracing, Perfetto)")
		metricsOut = flag.String("metrics-out", "", "write a JSON snapshot of the obs metric registry to this file on exit")
	)
	flag.Parse()

	if *resume && *jpath == "" {
		fmt.Fprintln(os.Stderr, "sweep: -resume requires -journal")
		os.Exit(2)
	}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	if *traceOut != "" {
		obs.SetTracer(obs.NewTracer())
		defer func() {
			if werr := writeObsFile(*traceOut, obs.CurrentTracer().WriteTrace); werr != nil && err == nil {
				err = werr
			}
		}()
	}
	if *metricsOut != "" {
		defer func() {
			if werr := writeObsFile(*metricsOut, obs.Default.WriteJSON); werr != nil && err == nil {
				err = werr
			}
		}()
	}

	optFns := []core.Option{core.WithScale(*scale)}
	var rc *runcache.Cache
	if *cacheSize >= 0 {
		c, cerr := runcache.New(*cacheSize, *cacheDir)
		if cerr != nil {
			return cerr
		}
		rc = c
		optFns = append(optFns, core.WithCache(rc))
	}
	if *jpath != "" {
		if !*resume {
			if err := os.Remove(*jpath); err != nil && !os.IsNotExist(err) {
				return err
			}
		}
		jn, jerr := journal.Open(*jpath)
		if jerr != nil {
			return jerr
		}
		defer func() {
			if cerr := jn.Close(); cerr != nil {
				fmt.Fprintln(os.Stderr, "sweep: closing journal:", cerr)
			}
		}()
		if *resume {
			fmt.Fprintf(os.Stderr, "resuming: %d completed cells replayed from %s\n", jn.Len(), *jpath)
		}
		optFns = append(optFns, core.WithJournal(jn))
	}
	if *progIvl > 0 {
		prog := journal.NewProgress(os.Stderr, *progIvl)
		optFns = append(optFns, core.WithProgress(prog))
		defer func() {
			prog.Finish()
			if s := rc.Stats(); s.Hits()+s.Misses > 0 {
				fmt.Fprintf(os.Stderr, "run cache: %d mem hits, %d disk hits, %d misses (%.1f%% hit rate)\n",
					s.MemHits, s.DiskHits, s.Misses, 100*s.HitRate())
			}
		}()
	}
	base, err := core.NewOptions(optFns...)
	if err != nil {
		return err
	}

	benches := []string{"CG", "MG", "LU"}
	cfgs := []config.Arch{config.CMT, config.CMPSMP, config.CMTSMP}

	for _, ab := range ablations() {
		if *which != "all" && *which != ab.name {
			continue
		}
		if ab.policy != nil {
			if *ab.policy == sched.Symbiotic {
				err = runSymbiosisAblation(ctx, ab, base)
			} else {
				err = runPairAblation(ctx, ab, base)
			}
			if err != nil {
				return err
			}
			continue
		}
		if err := runSingleAblation(ctx, ab, base, benches, cfgs); err != nil {
			return err
		}
	}
	return nil
}

// writeObsFile creates path and streams one observability dump into it.
func writeObsFile(path string, write func(w io.Writer) error) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	werr := write(f)
	cerr := f.Close()
	if werr != nil {
		return werr
	}
	return cerr
}

// runSingleAblation compares per-benchmark speedups with and without the
// machine mutation.
func runSingleAblation(ctx context.Context, ab ablation, base core.Options, benches []string, archs []config.Arch) error {
	varCfg := machine.PaxvilleSMP()
	ab.mutate(&varCfg)
	variant := base
	variant.Machine = &varCfg

	headers := []string{"benchmark"}
	for _, a := range archs {
		headers = append(headers, string(a)+" base", string(a)+" "+ab.name)
	}
	t := report.NewTable(fmt.Sprintf("Ablation %q — %s (speedup over each run's own serial)", ab.name, ab.detail), headers...)

	for _, bn := range benches {
		prof, err := profiles.ByName(bn)
		if err != nil {
			return err
		}
		row := []any{bn}
		for _, a := range archs {
			cfg, err := config.ByArch(a)
			if err != nil {
				return err
			}
			for _, opt := range []core.Options{base, variant} {
				serial, err := core.SerialBaselineContext(ctx, prof, opt)
				if err != nil {
					return err
				}
				res, err := core.RunSingleContext(ctx, prof, cfg, opt)
				if err != nil {
					return err
				}
				row = append(row, core.Speedup(serial.WallCycles, res.WallCycles))
			}
		}
		t.AddF(row...)
	}
	fmt.Println(t.String())
	return nil
}

// runPairAblation compares the CG/FT pair under alternating vs block
// placement.
func runPairAblation(ctx context.Context, ab ablation, base core.Options) error {
	cg, err := profiles.ByName("CG")
	if err != nil {
		return err
	}
	ft, err := profiles.ByName("FT")
	if err != nil {
		return err
	}
	w := core.Pair(cg, ft)

	blockOpt := base
	blockOpt.Policy = *ab.policy

	t := report.NewTable(fmt.Sprintf("Ablation %q — %s", ab.name, ab.detail),
		"config", "program", "alternate speedup", "block speedup")
	baselines := map[string]int64{}
	for _, p := range w.Programs {
		b, err := core.SerialBaselineContext(ctx, p, base)
		if err != nil {
			return err
		}
		baselines[p.Name] = b.WallCycles
	}
	for _, arch := range []config.Arch{config.CMT, config.CMPSMP, config.CMTSMP} {
		cfg, err := config.ByArch(arch)
		if err != nil {
			return err
		}
		alt, err := core.RunContext(ctx, w, cfg, base)
		if err != nil {
			return err
		}
		blk, err := core.RunContext(ctx, w, cfg, blockOpt)
		if err != nil {
			return err
		}
		for gi, p := range w.Programs {
			t.AddF(cfg.Name, p.Name,
				core.Speedup(baselines[p.Name], alt.Programs[gi].Cycles),
				core.Speedup(baselines[p.Name], blk.Programs[gi].Cycles))
		}
	}
	fmt.Println(t.String())
	return nil
}

// runSymbiosisAblation compares alternate vs symbiotic placement for a
// four-program mix (two memory-heavy, two compute-light) on the full HT
// machine — the paper's future-work scheduler direction.
func runSymbiosisAblation(ctx context.Context, ab ablation, base core.Options) error {
	var w core.Workload
	for _, n := range []string{"MG", "EP", "SP", "EP"} {
		p, err := profiles.ByName(n)
		if err != nil {
			return err
		}
		w.Programs = append(w.Programs, p)
	}
	cfg, err := config.ByArch(config.CMTSMP)
	if err != nil {
		return err
	}
	symOpt := base
	symOpt.Policy = sched.Symbiotic

	t := report.NewTable(fmt.Sprintf("Ablation %q — %s", ab.name, ab.detail),
		"program", "alternate speedup", "symbiotic speedup")
	alt, err := core.RunContext(ctx, w, cfg, base)
	if err != nil {
		return err
	}
	sym, err := core.RunContext(ctx, w, cfg, symOpt)
	if err != nil {
		return err
	}
	for gi, p := range w.Programs {
		serial, err := core.SerialBaselineContext(ctx, p, base)
		if err != nil {
			return err
		}
		t.AddF(fmt.Sprintf("%s[%d]", p.Name, gi),
			core.Speedup(serial.WallCycles, alt.Programs[gi].Cycles),
			core.Speedup(serial.WallCycles, sym.Programs[gi].Cycles))
	}
	fmt.Println(t.String())
	return nil
}
