// Command nastrace records and replays benchmark instruction traces.
// Recording captures one thread's synthetic class-B stream to a compact
// binary file; replaying drives the simulated machine from the file and
// reports the counters, bit-identical to a live run with the same seed.
//
//	nastrace -record cg.xtrc -bench CG -scale 0.1   # capture
//	nastrace -replay cg.xtrc                        # simulate from the file
package main

import (
	"flag"
	"fmt"
	"os"

	"xeonomp/internal/counters"
	"xeonomp/internal/cpu"
	"xeonomp/internal/machine"
	"xeonomp/internal/profiles"
	"xeonomp/internal/trace"
)

func main() {
	var (
		record = flag.String("record", "", "write a trace of -bench to this file")
		replay = flag.String("replay", "", "replay a trace file on the simulated machine")
		bench  = flag.String("bench", "CG", "benchmark profile to record")
		scale  = flag.Float64("scale", 0.1, "instruction-budget scale for recording")
		seed   = flag.Uint64("seed", 1, "stream seed for recording")
	)
	flag.Parse()

	switch {
	case *record != "":
		if err := doRecord(*record, *bench, *scale, *seed); err != nil {
			fail(err)
		}
	case *replay != "":
		if err := doReplay(*replay); err != nil {
			fail(err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func doRecord(path, bench string, scale float64, seed uint64) error {
	prof, err := profiles.ByName(bench)
	if err != nil {
		return err
	}
	layout, err := prof.Layout(1, 1)
	if err != nil {
		return err
	}
	gen, err := prof.Generator(layout, 0, 1, scale, seed)
	if err != nil {
		return err
	}
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	//xeonlint:ignore errdrop backstop double-close; the write path checks the explicit f.Close below
	defer f.Close()
	n, err := trace.WriteTrace(f, gen)
	if err != nil {
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	st, err := os.Stat(path)
	if err != nil {
		return err
	}
	fmt.Printf("recorded %d instructions of %s (scale %.2f) to %s (%d bytes, %.1f B/instr)\n",
		n, bench, scale, path, st.Size(), float64(st.Size())/float64(n))
	return nil
}

func doReplay(path string) error {
	f, err := os.Open(path)
	if err != nil {
		return err
	}
	//xeonlint:ignore errdrop read-only replay file; a close error cannot corrupt anything
	defer f.Close()
	fs, err := trace.NewFileStream(f)
	if err != nil {
		return err
	}
	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		return err
	}
	m.DisableAll()
	x, err := m.Context(0, 0, 0)
	if err != nil {
		return err
	}
	x.Enabled = true
	th := cpu.NewThread("replay", 0, fs, cpu.NewTeam(1))
	x.Assign(th)
	x.Prewarm()
	wall, err := m.Run(0)
	if err != nil {
		return err
	}
	if fs.Err() != nil {
		return fs.Err()
	}
	mtr := counters.Derive(&th.Counters)
	fmt.Printf("replayed %s: %d instructions in %d cycles\n",
		path, th.Counters.Get(counters.Instructions), wall)
	fmt.Printf("  CPI %.2f, L1 miss %.3f, L2 miss %.3f, BP %.1f%%, stall %.1f%%\n",
		mtr.CPI, mtr.L1MissRate, mtr.L2MissRate, mtr.BranchPredRate, mtr.StalledPct)
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "nastrace:", err)
	os.Exit(1)
}
