// Command xeonctl is the client for cmd/xeond, the experiment daemon.
// It submits studies and cells over HTTP+JSON, follows the progress
// stream, and downloads finished artifacts — which are byte-identical to
// a local `xeonchar -export-json` run, so `xeonctl study -out dir` plus
// `diff -r dir testdata/golden` is the whole remote-equivalence check
// (and exactly what the server-smoke CI job does).
//
//	xeonctl -server http://127.0.0.1:7788 study -name single -scale 0.1 -out out/
//	xeonctl -server http://127.0.0.1:7788 cell -benchmarks CG,FT -config 2P-2C-SMT
//	xeonctl -server http://127.0.0.1:7788 status job-1
//	xeonctl -server http://127.0.0.1:7788 cancel job-1
//	xeonctl -server http://127.0.0.1:7788 metrics
package main

import (
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"path/filepath"
	"strings"

	"xeonomp/internal/server"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:7788", "base URL of the xeond daemon")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: xeonctl [-server URL] <study|cell|status|cancel|metrics> [args]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	c := &client{base: strings.TrimRight(*serverURL, "/")}
	var err error
	switch args[0] {
	case "study":
		err = c.study(args[1:])
	case "cell":
		err = c.cell(args[1:])
	case "status":
		err = c.status(args[1:])
	case "cancel":
		err = c.cancel(args[1:])
	case "metrics":
		err = c.metrics()
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xeonctl:", err)
		os.Exit(1)
	}
}

type client struct{ base string }

// doJSON performs one request and decodes the JSON response into out,
// turning non-2xx responses into errors carrying the server's message.
func (c *client) doJSON(method, path string, body, out any) error {
	var rd io.Reader
	if body != nil {
		b, err := json.Marshal(body)
		if err != nil {
			return err
		}
		rd = bytes.NewReader(b)
	}
	req, err := http.NewRequest(method, c.base+path, rd)
	if err != nil {
		return err
	}
	if body != nil {
		req.Header.Set("Content-Type", "application/json")
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		return err
	}
	defer func() {
		// Best-effort drain; the response is already consumed or failed.
		_ = resp.Body.Close()
	}()
	if resp.StatusCode/100 != 2 {
		var e server.ErrorResponse
		if json.NewDecoder(resp.Body).Decode(&e) == nil && e.Error != "" {
			return fmt.Errorf("%s %s: %s (%s)", method, path, e.Error, resp.Status)
		}
		return fmt.Errorf("%s %s: %s", method, path, resp.Status)
	}
	if out == nil {
		return nil
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// study submits a study, optionally follows it to completion, and
// optionally downloads its artifacts.
func (c *client) study(args []string) error {
	fs := flag.NewFlagSet("study", flag.ExitOnError)
	name := fs.String("name", "single", "study to run: single, pair or cross")
	scale := fs.Float64("scale", 0, "workload scale (0: server default 1.0)")
	seed := fs.Uint64("seed", 0, "trial seed (0: server default 1)")
	policy := fs.String("policy", "", "placement policy (empty: alternate)")
	wait := fs.Bool("wait", true, "stream progress and wait for the job to finish")
	out := fs.String("out", "", "directory to download finished artifacts into (implies -wait)")
	quiet := fs.Bool("q", false, "suppress the per-cell progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	var st server.StudyStatus
	req := server.StudyRequest{Study: *name, Scale: *scale, Seed: *seed, Policy: *policy}
	if err := c.doJSON(http.MethodPost, "/api/v1/study", req, &st); err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xeonctl: submitted %s as %s (%d cells)\n", st.Study, st.ID, st.Cells)
	if !*wait && *out == "" {
		return printJSON(st)
	}
	if err := c.follow(st.ID, *quiet); err != nil {
		return err
	}
	if err := c.doJSON(http.MethodGet, "/api/v1/study/"+st.ID, nil, &st); err != nil {
		return err
	}
	if st.State != server.StateDone {
		// Print the terminal status before failing so scripts see why.
		_ = printJSON(st)
		return fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	if *out != "" {
		if err := c.download(st, *out); err != nil {
			return err
		}
	}
	return printJSON(st)
}

// follow streams /progress/{id} until the job reaches a terminal state.
func (c *client) follow(id string, quiet bool) error {
	resp, err := http.Get(c.base + "/progress/" + id)
	if err != nil {
		return err
	}
	defer func() {
		// The stream ended or errored; nothing left to read either way.
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("progress %s: %s", id, resp.Status)
	}
	dec := json.NewDecoder(resp.Body)
	for {
		var e server.Event
		if err := dec.Decode(&e); err != nil {
			if err == io.EOF {
				return nil
			}
			return err
		}
		if e.State != "" {
			return nil
		}
		if !quiet {
			tag := ""
			if e.Cached {
				tag = " (cached)"
			}
			fmt.Fprintf(os.Stderr, "xeonctl: [%d/%d] %s%s\n", e.Done, e.Total, e.Cell, tag)
		}
	}
}

// download writes every artifact of a done job into dir, verbatim.
func (c *client) download(st server.StudyStatus, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range st.Artifacts {
		resp, err := http.Get(c.base + "/api/v1/study/" + st.ID + "/artifacts/" + name)
		if err != nil {
			return err
		}
		b, err := io.ReadAll(resp.Body)
		// Fully read above; close cannot add information.
		_ = resp.Body.Close()
		if err != nil {
			return err
		}
		if resp.StatusCode != http.StatusOK {
			return fmt.Errorf("artifact %s: %s", name, resp.Status)
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "xeonctl: wrote", path)
	}
	return nil
}

// cell runs one simulation cell synchronously and prints the response.
func (c *client) cell(args []string) error {
	fs := flag.NewFlagSet("cell", flag.ExitOnError)
	benchmarks := fs.String("benchmarks", "", "comma-separated program names (1 or 2, e.g. CG or CG,FT)")
	cfg := fs.String("config", "", "Table-1 configuration name")
	scale := fs.Float64("scale", 0, "workload scale (0: server default 1.0)")
	seed := fs.Uint64("seed", 0, "trial seed (0: server default 1)")
	policy := fs.String("policy", "", "placement policy (empty: alternate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := server.CellRequest{Config: *cfg, Scale: *scale, Seed: *seed, Policy: *policy}
	for _, b := range strings.Split(*benchmarks, ",") {
		if b = strings.TrimSpace(b); b != "" {
			req.Benchmarks = append(req.Benchmarks, b)
		}
	}
	var resp server.CellResponse
	if err := c.doJSON(http.MethodPost, "/api/v1/cell", req, &resp); err != nil {
		return err
	}
	return printJSON(resp)
}

func (c *client) status(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: xeonctl status <job-id>")
	}
	var st server.StudyStatus
	if err := c.doJSON(http.MethodGet, "/api/v1/study/"+args[0], nil, &st); err != nil {
		return err
	}
	return printJSON(st)
}

func (c *client) cancel(args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: xeonctl cancel <job-id>")
	}
	var st server.StudyStatus
	if err := c.doJSON(http.MethodDelete, "/api/v1/study/"+args[0], nil, &st); err != nil {
		return err
	}
	return printJSON(st)
}

// metrics dumps the daemon's /metrics snapshot to stdout.
func (c *client) metrics() error {
	resp, err := http.Get(c.base + "/metrics")
	if err != nil {
		return err
	}
	defer func() {
		// Fully copied below; close cannot add information.
		_ = resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return fmt.Errorf("metrics: %s", resp.Status)
	}
	_, err = io.Copy(os.Stdout, resp.Body)
	return err
}

// printJSON writes v to stdout as indented JSON, the machine-readable
// half of every subcommand's output.
func printJSON(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(b))
	return err
}
