// Command xeonctl is the client for cmd/xeond, the experiment daemon.
// It is a thin CLI over api.Client (internal/api): it submits studies
// and cells over HTTP+JSON, follows the progress stream (reconnecting
// with seq-gap detection), and downloads finished artifacts — which are
// byte-identical to a local `xeonchar -export-json` run, so
// `xeonctl study -out dir` plus `diff -r dir testdata/golden` is the
// whole remote-equivalence check (and exactly what the server-smoke and
// shard-smoke CI jobs do).
//
//	xeonctl -server http://127.0.0.1:7788 study -name single -scale 0.1 -out out/
//	xeonctl -server http://127.0.0.1:7788 cell -benchmarks CG,FT -config 2P-2C-SMT
//	xeonctl -server http://127.0.0.1:7788 status job-1
//	xeonctl -server http://127.0.0.1:7788 cancel job-1
//	xeonctl -server http://127.0.0.1:7788 list
//	xeonctl -server http://127.0.0.1:7788 metrics
//
// Ctrl-C cancels the in-flight request or stream cleanly; a canceled
// study keeps its journal tail on the daemon, so resubmitting the same
// request resumes instead of recomputing.
package main

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"

	"xeonomp/internal/api"
)

func main() {
	serverURL := flag.String("server", "http://127.0.0.1:7788", "base URL of the xeond daemon")
	flag.Usage = func() {
		fmt.Fprintln(os.Stderr, "usage: xeonctl [-server URL] <study|cell|status|cancel|list|metrics> [args]")
		flag.PrintDefaults()
	}
	flag.Parse()
	args := flag.Args()
	if len(args) == 0 {
		flag.Usage()
		os.Exit(2)
	}
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()
	c := api.NewClient(*serverURL)
	var err error
	switch args[0] {
	case "study":
		err = study(ctx, c, args[1:])
	case "cell":
		err = cell(ctx, c, args[1:])
	case "status":
		err = status(ctx, c, args[1:])
	case "cancel":
		err = cancel(ctx, c, args[1:])
	case "list":
		err = list(ctx, c)
	case "metrics":
		err = metrics(ctx, c)
	default:
		flag.Usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "xeonctl:", err)
		os.Exit(1)
	}
}

// study submits a study, optionally follows it to completion, and
// optionally downloads its artifacts.
func study(ctx context.Context, c *api.Client, args []string) error {
	fs := flag.NewFlagSet("study", flag.ExitOnError)
	name := fs.String("name", "single", "study to run: single, pair or cross")
	scale := fs.Float64("scale", 0, "workload scale (0: server default 1.0)")
	seed := fs.Uint64("seed", 0, "trial seed (0: server default 1)")
	policy := fs.String("policy", "", "placement policy (empty: alternate)")
	wait := fs.Bool("wait", true, "stream progress and wait for the job to finish")
	out := fs.String("out", "", "directory to download finished artifacts into (implies -wait)")
	quiet := fs.Bool("q", false, "suppress the per-cell progress lines")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := api.StudyRequest{Study: *name, Scale: *scale, Seed: *seed, Policy: *policy}
	st, err := c.SubmitStudy(ctx, req)
	if err != nil {
		return err
	}
	fmt.Fprintf(os.Stderr, "xeonctl: submitted %s as %s (%d cells)\n", st.Study, st.ID, st.Cells)
	if !*wait && *out == "" {
		return printJSON(st)
	}
	if _, err := c.Follow(ctx, st.ID, func(e api.Event) error {
		if *quiet || e.Terminal() {
			return nil
		}
		tag := ""
		if e.Cached {
			tag = " (cached)"
		}
		fmt.Fprintf(os.Stderr, "xeonctl: [%d/%d] %s%s\n", e.Done, e.Total, e.Cell, tag)
		return nil
	}); err != nil {
		return err
	}
	if st, err = c.Study(ctx, st.ID); err != nil {
		return err
	}
	if st.State != api.StateDone {
		// Print the terminal status before failing so scripts see why.
		_ = printJSON(st)
		return fmt.Errorf("job %s finished %s: %s", st.ID, st.State, st.Error)
	}
	if *out != "" {
		if err := download(ctx, c, st, *out); err != nil {
			return err
		}
	}
	return printJSON(st)
}

// download writes every artifact of a done job into dir, verbatim.
func download(ctx context.Context, c *api.Client, st api.StudyStatus, dir string) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for _, name := range st.Artifacts {
		b, err := c.Artifact(ctx, st.ID, name)
		if err != nil {
			return err
		}
		path := filepath.Join(dir, name+".json")
		if err := os.WriteFile(path, b, 0o644); err != nil {
			return err
		}
		fmt.Fprintln(os.Stderr, "xeonctl: wrote", path)
	}
	return nil
}

// cell runs one simulation cell synchronously and prints the response.
func cell(ctx context.Context, c *api.Client, args []string) error {
	fs := flag.NewFlagSet("cell", flag.ExitOnError)
	benchmarks := fs.String("benchmarks", "", "comma-separated program names (1 or 2, e.g. CG or CG,FT)")
	cfg := fs.String("config", "", "Table-1 configuration name")
	scale := fs.Float64("scale", 0, "workload scale (0: server default 1.0)")
	seed := fs.Uint64("seed", 0, "trial seed (0: server default 1)")
	policy := fs.String("policy", "", "placement policy (empty: alternate)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	req := api.CellRequest{Config: *cfg, Scale: *scale, Seed: *seed, Policy: *policy}
	for _, b := range strings.Split(*benchmarks, ",") {
		if b = strings.TrimSpace(b); b != "" {
			req.Benchmarks = append(req.Benchmarks, b)
		}
	}
	resp, err := c.RunCell(ctx, req)
	if err != nil {
		return err
	}
	return printJSON(resp)
}

func status(ctx context.Context, c *api.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: xeonctl status <job-id>")
	}
	st, err := c.Study(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(st)
}

func cancel(ctx context.Context, c *api.Client, args []string) error {
	if len(args) != 1 {
		return fmt.Errorf("usage: xeonctl cancel <job-id>")
	}
	st, err := c.CancelStudy(ctx, args[0])
	if err != nil {
		return err
	}
	return printJSON(st)
}

// list prints every job the daemon knows, in submission order.
func list(ctx context.Context, c *api.Client) error {
	sts, err := c.Studies(ctx)
	if err != nil {
		return err
	}
	return printJSON(sts)
}

// metrics dumps the daemon's /metrics snapshot to stdout.
func metrics(ctx context.Context, c *api.Client) error {
	b, err := c.Metrics(ctx)
	if err != nil {
		return err
	}
	_, err = os.Stdout.Write(b)
	return err
}

// printJSON writes v to stdout as indented JSON, the machine-readable
// half of every subcommand's output.
func printJSON(v any) error {
	b, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		return err
	}
	_, err = fmt.Println(string(b))
	return err
}
