// Command xeonlint runs the repo's domain-specific static analyzers (see
// internal/analysis) over the module: nondeterminism taint, dimension
// inference, unit safety, dropped errors, context flow, goroutine leaks,
// lock ordering, counter/golden-schema parity, and the profile-guided
// performance tier (hotalloc, hotcall, benchparity) driven by the
// checked-in CPU profile.
//
// Usage:
//
//	xeonlint ./...           # analyze the whole module (the only scope)
//	xeonlint -list           # print the analyzers and what they guard
//	xeonlint -tests ./...    # also analyze in-package _test.go files
//	xeonlint -json ./...     # one JSON finding per line, for tooling
//	xeonlint -fix ./...      # apply the suggested fixes in place
//	xeonlint -diff ./...     # print pending fixes as a unified diff
//	xeonlint -only ctxflow,goleak ./...   # run a subset of analyzers
//	xeonlint -only hot ./...              # hot = hotalloc,hotcall,benchparity
//	xeonlint -skip taint ./...            # run all but these analyzers
//	xeonlint -pgo path/to/cpu.pgo ./...   # hot set from another profile
//	xeonlint -hot-threshold 0.02 ./...    # raise the flat-share cutoff
//	xeonlint -hot-report     # print the hot set and exit
//	xeonlint -v ./...        # report per-analyzer wall time on stderr
//
// Findings print as "file:line:col: [analyzer] message" and make the exit
// status 1; a load or usage problem exits 2. Advisory notes (hotcall's
// hot→cold inlining hints) print but never affect the exit status. Under
// -fix, findings that carry a machine-applicable fix are rewritten in
// place and only the unfixable remainder affects the exit status. Under
// -diff, the exit status is 1 exactly when fixes are pending, so CI can
// assert the tree is fix-clean. Suppress a finding with
// //xeonlint:ignore <analyzer> <reason> on or above the offending line —
// unused suppressions are themselves findings.
//
// The -pgo profile defaults to cmd/xeonchar/default.pgo under the module
// root. When that default is absent the performance analyzers fall back
// to //xeonlint:hot directives alone (with a warning); an explicitly set
// -pgo path that cannot be read is an error.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"xeonomp/internal/analysis"
)

func main() {
	var (
		root     = flag.String("root", ".", "module root to analyze (must hold go.mod)")
		tests    = flag.Bool("tests", false, "also analyze in-package _test.go files")
		list     = flag.Bool("list", false, "list the analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit one JSON finding per line")
		applyFix = flag.Bool("fix", false, "apply suggested fixes in place")
		diffFix  = flag.Bool("diff", false, "print suggested fixes as a unified diff; exit 1 if any are pending")
		only     = flag.String("only", "", "comma-separated analyzers to run exclusively ('hot' = hotalloc,hotcall,benchparity)")
		skip     = flag.String("skip", "", "comma-separated analyzers to skip ('hot' = hotalloc,hotcall,benchparity)")
		pgoPath  = flag.String("pgo", defaultPGOPath, "pprof CPU profile for the hot set, relative to -root; '' disables profile hotness")
		hotThr   = flag.Float64("hot-threshold", analysis.DefaultHotThreshold, "flat-share cutoff for profile hotness")
		hotRep   = flag.Bool("hot-report", false, "print the resolved hot set and unresolved profile names, then exit")
		verbose  = flag.Bool("v", false, "report per-analyzer wall time on stderr")
	)
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}
	analyzers, err := selectAnalyzers(analyzers, *only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xeonlint:", err)
		os.Exit(2)
	}
	if *applyFix && *diffFix {
		fmt.Fprintln(os.Stderr, "xeonlint: -fix and -diff are mutually exclusive (apply, or preview)")
		os.Exit(2)
	}
	// The linter always analyzes the whole module: the cross-package
	// analyzers need every package loaded anyway. Accept the conventional
	// ./... argument; reject anything narrower so nobody believes a
	// partial run happened.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "xeonlint: only whole-module analysis is supported; got %q (use ./... or no argument)\n", arg)
			os.Exit(2)
		}
	}

	prog, err := (&analysis.Loader{Root: *root, IncludeTests: *tests}).Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xeonlint:", err)
		os.Exit(2)
	}
	prog.HotThreshold = *hotThr
	if *pgoPath != "" {
		path := *pgoPath
		if !filepath.IsAbs(path) {
			path = filepath.Join(*root, path)
		}
		prof, err := analysis.ReadPGO(path)
		switch {
		case err == nil:
			prog.PGO = prof
		case flagWasSet("pgo"):
			// An explicitly chosen profile that does not decode is an
			// error; silently linting against nothing would lie.
			fmt.Fprintln(os.Stderr, "xeonlint:", err)
			os.Exit(2)
		default:
			fmt.Fprintf(os.Stderr, "xeonlint: default profile unavailable (%v); hot set from //xeonlint:hot directives only\n", err)
		}
	}

	if *hotRep {
		hot := prog.HotFunctions()
		for _, h := range hot {
			fmt.Printf("%6.2f%% flat %6.2f%% cum  %-60s %s\n", h.Flat*100, h.Cum*100, h.Name, h.Reason)
		}
		for _, name := range prog.UnresolvedHotNames() {
			fmt.Printf("unresolved: %s (profile name not in source; profile may be stale)\n", name)
		}
		fmt.Fprintf(os.Stderr, "xeonlint: %d hot function(s)\n", len(hot))
		return
	}

	diags, timings := prog.RunTimed(analyzers)
	if *verbose {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "xeonlint: %-14s %12v\n", t.Name, time.Duration(t.ElapsedNs))
		}
	}

	if *applyFix || *diffFix {
		fixed, err := analysis.ApplyFixes(prog, diags, os.ReadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xeonlint:", err)
			os.Exit(2)
		}
		if *diffFix {
			names := make([]string, 0, len(fixed))
			for name := range fixed {
				names = append(names, name)
			}
			sort.Strings(names)
			pending := false
			for _, name := range names {
				old, err := os.ReadFile(name)
				if err != nil {
					fmt.Fprintln(os.Stderr, "xeonlint:", err)
					os.Exit(2)
				}
				if d := analysis.UnifiedDiff(relName(name), old, fixed[name]); d != "" {
					fmt.Print(d)
					pending = true
				}
			}
			if pending {
				fmt.Fprintln(os.Stderr, "xeonlint: fixes pending; run xeonlint -fix ./...")
				os.Exit(1)
			}
			return
		}
		names := make([]string, 0, len(fixed))
		for name := range fixed {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := os.WriteFile(name, fixed[name], 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "xeonlint:", err)
				os.Exit(2)
			}
		}
		// Only the findings no fix could resolve remain actionable.
		var rest []analysis.Diagnostic
		for _, d := range diags {
			if d.Fix == nil {
				rest = append(rest, d)
			}
		}
		fmt.Fprintf(os.Stderr, "xeonlint: applied fixes in %d file(s), %d finding(s) remain\n", len(fixed), len(rest))
		diags = rest
	}

	findings, notes := 0, 0
	for _, d := range diags {
		if d.Note {
			notes++
		} else {
			findings++
		}
		if *jsonOut {
			line, err := json.Marshal(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
				Fixable  bool   `json:"fixable"`
				Note     bool   `json:"note"`
			}{relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message, d.Fix != nil, d.Note})
			if err != nil {
				fmt.Fprintln(os.Stderr, "xeonlint:", err)
				os.Exit(2)
			}
			fmt.Println(string(line))
			continue
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if findings > 0 {
		fmt.Fprintf(os.Stderr, "xeonlint: %d finding(s), %d note(s)\n", findings, notes)
		os.Exit(1)
	}
	if notes > 0 {
		fmt.Fprintf(os.Stderr, "xeonlint: %d advisory note(s), no findings\n", notes)
	}
}

// defaultPGOPath is where the checked-in CPU profile lives, relative to
// the module root — the same profile the go toolchain would pick up for
// PGO builds of cmd/xeonchar.
const defaultPGOPath = "cmd/xeonchar/default.pgo"

// flagWasSet reports whether the named flag was given on the command
// line, distinguishing an explicit -pgo from the built-in default.
func flagWasSet(name string) bool {
	set := false
	flag.Visit(func(f *flag.Flag) {
		if f.Name == name {
			set = true
		}
	})
	return set
}

// selectAnalyzers narrows the registry by the -only/-skip flag values,
// preserving registry order. Unknown names are an error, not a silent
// no-op pass.
func selectAnalyzers(all []analysis.Analyzer, only, skip string) ([]analysis.Analyzer, error) {
	names := map[string]bool{}
	for _, a := range all {
		names[a.Name()] = true
	}
	// "hot" is a group alias for the profile-guided tier.
	groups := map[string][]string{
		"hot": {"hotalloc", "hotcall", "benchparity"},
	}
	parse := func(flagName, v string) (map[string]bool, error) {
		if v == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(v, ",") {
			name = strings.TrimSpace(name)
			if members, ok := groups[name]; ok {
				for _, m := range members {
					set[m] = true
				}
				continue
			}
			if !names[name] {
				return nil, fmt.Errorf("-%s names unknown analyzer %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []analysis.Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name()] {
			continue
		}
		if skipSet[a.Name()] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only/-skip selected no analyzers")
	}
	return out, nil
}

// relName renders a filename relative to the working directory when
// possible, matching how editors and CI annotations expect paths.
func relName(name string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(cwd, name)
	if err != nil {
		return name
	}
	return rel
}
