// Command xeonlint runs the repo's domain-specific static analyzers (see
// internal/analysis) over the module: nondeterminism taint, dimension
// inference, unit safety, dropped errors, context flow, goroutine leaks,
// lock ordering, and counter/golden-schema parity.
//
// Usage:
//
//	xeonlint ./...           # analyze the whole module (the only scope)
//	xeonlint -list           # print the analyzers and what they guard
//	xeonlint -tests ./...    # also analyze in-package _test.go files
//	xeonlint -json ./...     # one JSON finding per line, for tooling
//	xeonlint -fix ./...      # apply the suggested fixes in place
//	xeonlint -diff ./...     # print pending fixes as a unified diff
//	xeonlint -only ctxflow,goleak ./...   # run a subset of analyzers
//	xeonlint -skip taint ./...            # run all but these analyzers
//	xeonlint -v ./...        # report per-analyzer wall time on stderr
//
// Findings print as "file:line:col: [analyzer] message" and make the exit
// status 1; a load or usage problem exits 2. Under -fix, findings that
// carry a machine-applicable fix are rewritten in place and only the
// unfixable remainder affects the exit status. Under -diff, the exit
// status is 1 exactly when fixes are pending, so CI can assert the tree
// is fix-clean. Suppress a finding with //xeonlint:ignore <analyzer>
// <reason> on or above the offending line — unused suppressions are
// themselves findings.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"time"

	"xeonomp/internal/analysis"
)

func main() {
	var (
		root     = flag.String("root", ".", "module root to analyze (must hold go.mod)")
		tests    = flag.Bool("tests", false, "also analyze in-package _test.go files")
		list     = flag.Bool("list", false, "list the analyzers and exit")
		jsonOut  = flag.Bool("json", false, "emit one JSON finding per line")
		applyFix = flag.Bool("fix", false, "apply suggested fixes in place")
		diffFix  = flag.Bool("diff", false, "print suggested fixes as a unified diff; exit 1 if any are pending")
		only     = flag.String("only", "", "comma-separated analyzers to run exclusively")
		skip     = flag.String("skip", "", "comma-separated analyzers to skip")
		verbose  = flag.Bool("v", false, "report per-analyzer wall time on stderr")
	)
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}
	analyzers, err := selectAnalyzers(analyzers, *only, *skip)
	if err != nil {
		fmt.Fprintln(os.Stderr, "xeonlint:", err)
		os.Exit(2)
	}
	if *applyFix && *diffFix {
		fmt.Fprintln(os.Stderr, "xeonlint: -fix and -diff are mutually exclusive (apply, or preview)")
		os.Exit(2)
	}
	// The linter always analyzes the whole module: the cross-package
	// analyzers need every package loaded anyway. Accept the conventional
	// ./... argument; reject anything narrower so nobody believes a
	// partial run happened.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "xeonlint: only whole-module analysis is supported; got %q (use ./... or no argument)\n", arg)
			os.Exit(2)
		}
	}

	prog, err := (&analysis.Loader{Root: *root, IncludeTests: *tests}).Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xeonlint:", err)
		os.Exit(2)
	}
	diags, timings := prog.RunTimed(analyzers)
	if *verbose {
		for _, t := range timings {
			fmt.Fprintf(os.Stderr, "xeonlint: %-14s %12v\n", t.Name, time.Duration(t.ElapsedNs))
		}
	}

	if *applyFix || *diffFix {
		fixed, err := analysis.ApplyFixes(prog, diags, os.ReadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "xeonlint:", err)
			os.Exit(2)
		}
		if *diffFix {
			names := make([]string, 0, len(fixed))
			for name := range fixed {
				names = append(names, name)
			}
			sort.Strings(names)
			pending := false
			for _, name := range names {
				old, err := os.ReadFile(name)
				if err != nil {
					fmt.Fprintln(os.Stderr, "xeonlint:", err)
					os.Exit(2)
				}
				if d := analysis.UnifiedDiff(relName(name), old, fixed[name]); d != "" {
					fmt.Print(d)
					pending = true
				}
			}
			if pending {
				fmt.Fprintln(os.Stderr, "xeonlint: fixes pending; run xeonlint -fix ./...")
				os.Exit(1)
			}
			return
		}
		names := make([]string, 0, len(fixed))
		for name := range fixed {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			if err := os.WriteFile(name, fixed[name], 0o644); err != nil {
				fmt.Fprintln(os.Stderr, "xeonlint:", err)
				os.Exit(2)
			}
		}
		// Only the findings no fix could resolve remain actionable.
		var rest []analysis.Diagnostic
		for _, d := range diags {
			if d.Fix == nil {
				rest = append(rest, d)
			}
		}
		fmt.Fprintf(os.Stderr, "xeonlint: applied fixes in %d file(s), %d finding(s) remain\n", len(fixed), len(rest))
		diags = rest
	}

	for _, d := range diags {
		if *jsonOut {
			line, err := json.Marshal(struct {
				File     string `json:"file"`
				Line     int    `json:"line"`
				Col      int    `json:"col"`
				Analyzer string `json:"analyzer"`
				Message  string `json:"message"`
				Fixable  bool   `json:"fixable"`
			}{relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message, d.Fix != nil})
			if err != nil {
				fmt.Fprintln(os.Stderr, "xeonlint:", err)
				os.Exit(2)
			}
			fmt.Println(string(line))
			continue
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", relName(d.Pos.Filename), d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xeonlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}

// selectAnalyzers narrows the registry by the -only/-skip flag values,
// preserving registry order. Unknown names are an error, not a silent
// no-op pass.
func selectAnalyzers(all []analysis.Analyzer, only, skip string) ([]analysis.Analyzer, error) {
	names := map[string]bool{}
	for _, a := range all {
		names[a.Name()] = true
	}
	parse := func(flagName, v string) (map[string]bool, error) {
		if v == "" {
			return nil, nil
		}
		set := map[string]bool{}
		for _, name := range strings.Split(v, ",") {
			name = strings.TrimSpace(name)
			if !names[name] {
				return nil, fmt.Errorf("-%s names unknown analyzer %q (see -list)", flagName, name)
			}
			set[name] = true
		}
		return set, nil
	}
	onlySet, err := parse("only", only)
	if err != nil {
		return nil, err
	}
	skipSet, err := parse("skip", skip)
	if err != nil {
		return nil, err
	}
	var out []analysis.Analyzer
	for _, a := range all {
		if onlySet != nil && !onlySet[a.Name()] {
			continue
		}
		if skipSet[a.Name()] {
			continue
		}
		out = append(out, a)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("-only/-skip selected no analyzers")
	}
	return out, nil
}

// relName renders a filename relative to the working directory when
// possible, matching how editors and CI annotations expect paths.
func relName(name string) string {
	cwd, err := os.Getwd()
	if err != nil {
		return name
	}
	rel, err := filepath.Rel(cwd, name)
	if err != nil {
		return name
	}
	return rel
}
