// Command xeonlint runs the repo's domain-specific static analyzers (see
// internal/analysis) over the module: determinism, unit safety, dropped
// errors, lock misuse, and counter/golden-schema parity.
//
// Usage:
//
//	xeonlint ./...           # analyze the whole module (the only scope)
//	xeonlint -list           # print the analyzers and what they guard
//	xeonlint -tests ./...    # also analyze in-package _test.go files
//
// Findings print as "file:line:col: [analyzer] message" and make the exit
// status 1; a load or usage problem exits 2. Suppress a finding with
// //xeonlint:ignore <analyzer> <reason> on or above the offending line —
// unused suppressions are themselves findings.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xeonomp/internal/analysis"
)

func main() {
	var (
		root  = flag.String("root", ".", "module root to analyze (must hold go.mod)")
		tests = flag.Bool("tests", false, "also analyze in-package _test.go files")
		list  = flag.Bool("list", false, "list the analyzers and exit")
	)
	flag.Parse()

	analyzers := analysis.Analyzers()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name(), a.Doc())
		}
		return
	}
	// The linter always analyzes the whole module: the cross-package
	// analyzers need every package loaded anyway. Accept the conventional
	// ./... argument; reject anything narrower so nobody believes a
	// partial run happened.
	for _, arg := range flag.Args() {
		if arg != "./..." && arg != "." {
			fmt.Fprintf(os.Stderr, "xeonlint: only whole-module analysis is supported; got %q (use ./... or no argument)\n", arg)
			os.Exit(2)
		}
	}

	prog, err := (&analysis.Loader{Root: *root, IncludeTests: *tests}).Load()
	if err != nil {
		fmt.Fprintln(os.Stderr, "xeonlint:", err)
		os.Exit(2)
	}
	diags := prog.Run(analyzers)
	cwd, _ := os.Getwd()
	for _, d := range diags {
		name := d.Pos.Filename
		if cwd != "" {
			if rel, err := filepath.Rel(cwd, name); err == nil {
				name = rel
			}
		}
		fmt.Printf("%s:%d:%d: [%s] %s\n", name, d.Pos.Line, d.Pos.Column, d.Analyzer, d.Message)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "xeonlint: %d finding(s)\n", len(diags))
		os.Exit(1)
	}
}
