// Command lmbench runs the Section-3 LMbench-style measurements against the
// simulated memory system: the lat_mem_rd latency staircase and the bw_mem
// streaming bandwidths for one and two chips.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"xeonomp/internal/golden"
	"xeonomp/internal/lmbench"
	"xeonomp/internal/machine"
	"xeonomp/internal/units"
)

func main() {
	curve := flag.Bool("curve", false, "print the full lat_mem_rd latency staircase")
	exportJSON := flag.String("export-json", "", "write the Section-3 golden artifacts into this directory")
	checkDir := flag.String("check", "", "compare the measurements against the golden artifacts in this directory, failing on drift")
	flag.Parse()

	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		fail(err)
	}

	if *curve {
		var sizes []int64
		for s := int64(4 * units.KiB); s <= 64*units.MiB; s *= 2 {
			sizes = append(sizes, s)
		}
		points, err := lmbench.LatencyCurve(m, sizes)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %s\n", "size", "latency")
		for _, p := range points {
			fmt.Printf("%-10s %7.2f ns\n", units.HumanBytes(p.Size), p.LatencyNs)
		}
		return
	}

	r, err := lmbench.Measure(m)
	if err != nil {
		fail(err)
	}
	if *exportJSON != "" || *checkDir != "" {
		if err := runGolden(r, *exportJSON, *checkDir); err != nil {
			fail(err)
		}
		return
	}
	fmt.Printf("L1 latency:               %7.2f ns   (paper: 1.43 ns)\n", r.L1Ns)
	fmt.Printf("L2 latency:               %7.2f ns   (paper: 10.6 ns)\n", r.L2Ns)
	fmt.Printf("memory latency:           %7.2f ns   (paper: 136.85 ns)\n", r.MemNs)
	fmt.Printf("read bandwidth, 1 chip:   %7.2f GB/s (paper: 3.57 GB/s)\n", r.ReadBW1/units.GB)
	fmt.Printf("write bandwidth, 1 chip:  %7.2f GB/s (paper: 1.77 GB/s)\n", r.WriteBW1/units.GB)
	fmt.Printf("read bandwidth, 2 chips:  %7.2f GB/s (paper: 4.43 GB/s)\n", r.ReadBW2/units.GB)
	fmt.Printf("write bandwidth, 2 chips: %7.2f GB/s (paper: 2.6 GB/s)\n", r.WriteBW2/units.GB)
}

// runGolden exports or checks the two Section-3 artifacts: "lmbench"
// (simulated measurements, tight band) and "lmbench-paper" (the DESIGN §3
// paper targets, calibration bands). Unlike cmd/xeonchar -check, which
// demands the whole golden set, this checks only the artifacts lmbench
// itself produces, so it works against a full testdata/golden directory.
func runGolden(r lmbench.Result, exportDir, checkDir string) error {
	if exportDir != "" {
		if err := golden.Write(exportDir, r.Artifact(lmbench.GoldenName, golden.Relative(1e-9))); err != nil {
			return err
		}
		if err := golden.Write(exportDir, lmbench.PaperTargets()); err != nil {
			return err
		}
		fmt.Fprintf(os.Stderr, "wrote %s and %s to %s\n",
			golden.Filename(lmbench.GoldenName), golden.Filename(lmbench.PaperGoldenName), exportDir)
	}
	if checkDir == "" {
		return nil
	}
	var failed []string
	for _, name := range []string{lmbench.GoldenName, lmbench.PaperGoldenName} {
		g, err := golden.Load(filepath.Join(checkDir, golden.Filename(name)))
		if errors.Is(err, os.ErrNotExist) {
			fmt.Fprintf(os.Stderr, "skipping %s: not stored in %s\n", name, checkDir)
			continue
		}
		if err != nil {
			return err
		}
		rep, err := golden.Compare(g, r.Artifact(name, g.DefaultTol))
		if err != nil {
			return err
		}
		fmt.Println(rep.String())
		if !rep.OK() {
			failed = append(failed, name)
		}
	}
	if len(failed) > 0 {
		return fmt.Errorf("golden check against %s failed for %v", checkDir, failed)
	}
	return nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lmbench:", err)
	os.Exit(1)
}
