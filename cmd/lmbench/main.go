// Command lmbench runs the Section-3 LMbench-style measurements against the
// simulated memory system: the lat_mem_rd latency staircase and the bw_mem
// streaming bandwidths for one and two chips.
package main

import (
	"flag"
	"fmt"
	"os"

	"xeonomp/internal/lmbench"
	"xeonomp/internal/machine"
	"xeonomp/internal/units"
)

func main() {
	curve := flag.Bool("curve", false, "print the full lat_mem_rd latency staircase")
	flag.Parse()

	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		fail(err)
	}

	if *curve {
		var sizes []int64
		for s := int64(4 * units.KiB); s <= 64*units.MiB; s *= 2 {
			sizes = append(sizes, s)
		}
		points, err := lmbench.LatencyCurve(m, sizes)
		if err != nil {
			fail(err)
		}
		fmt.Printf("%-10s %s\n", "size", "latency")
		for _, p := range points {
			fmt.Printf("%-10s %7.2f ns\n", units.HumanBytes(p.Size), p.LatencyNs)
		}
		return
	}

	r, err := lmbench.Measure(m)
	if err != nil {
		fail(err)
	}
	fmt.Printf("L1 latency:               %7.2f ns   (paper: 1.43 ns)\n", r.L1Ns)
	fmt.Printf("L2 latency:               %7.2f ns   (paper: 10.6 ns)\n", r.L2Ns)
	fmt.Printf("memory latency:           %7.2f ns   (paper: 136.85 ns)\n", r.MemNs)
	fmt.Printf("read bandwidth, 1 chip:   %7.2f GB/s (paper: 3.57 GB/s)\n", r.ReadBW1/1e9)
	fmt.Printf("write bandwidth, 1 chip:  %7.2f GB/s (paper: 1.77 GB/s)\n", r.WriteBW1/1e9)
	fmt.Printf("read bandwidth, 2 chips:  %7.2f GB/s (paper: 4.43 GB/s)\n", r.ReadBW2/1e9)
	fmt.Printf("write bandwidth, 2 chips: %7.2f GB/s (paper: 2.6 GB/s)\n", r.WriteBW2/1e9)
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "lmbench:", err)
	os.Exit(1)
}
