// Command nasrun executes one functional NAS benchmark on the Go OpenMP
// runtime (no simulation — real parallel computation with verification).
//
// Usage:
//
//	nasrun -bench CG -class S -threads 4
//	nasrun -bench all -class T -threads 2
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"xeonomp/internal/npb"
)

func main() {
	var (
		bench   = flag.String("bench", "all", "benchmark: EP, IS, CG, MG, FT, BT, SP, LU or all")
		class   = flag.String("class", "S", "problem class: T, S, W, A, B")
		threads = flag.Int("threads", 0, "team size (0 = GOMAXPROCS)")
	)
	flag.Parse()

	cls := npb.Class(strings.ToUpper(*class))
	if !cls.Valid() {
		fmt.Fprintf(os.Stderr, "nasrun: unknown class %q\n", *class)
		os.Exit(2)
	}
	names := []string{"EP", "IS", "CG", "MG", "FT", "BT", "SP", "LU"}
	if strings.ToLower(*bench) != "all" {
		names = []string{strings.ToUpper(*bench)}
	}
	okAll := true
	for _, name := range names {
		start := time.Now()
		res, err := run(name, cls, *threads)
		if err != nil {
			fmt.Fprintf(os.Stderr, "nasrun: %v\n", err)
			os.Exit(2)
		}
		res.Class = cls
		elapsed := time.Since(start)
		fmt.Printf("%-60s  %8.3fs  %9.1f Mop/s\n", res.String(), elapsed.Seconds(), mops(name, cls, elapsed))
		okAll = okAll && res.Verified
	}
	if !okAll {
		os.Exit(1)
	}
}

func run(name string, cls npb.Class, threads int) (npb.Result, error) {
	switch name {
	case "EP":
		p, err := npb.EPClass(cls)
		if err != nil {
			return npb.Result{}, err
		}
		r, _ := npb.RunEP(p, threads)
		return r, nil
	case "IS":
		p, err := npb.ISClass(cls)
		if err != nil {
			return npb.Result{}, err
		}
		return npb.RunIS(p, threads), nil
	case "CG":
		p, err := npb.CGClass(cls)
		if err != nil {
			return npb.Result{}, err
		}
		r, _ := npb.RunCG(p, threads)
		return r, nil
	case "MG":
		p, err := npb.MGClass(cls)
		if err != nil {
			return npb.Result{}, err
		}
		r, _ := npb.RunMG(p, threads)
		return r, nil
	case "FT":
		p, err := npb.FTClass(cls)
		if err != nil {
			return npb.Result{}, err
		}
		r, _ := npb.RunFT(p, threads)
		return r, nil
	case "BT":
		p, err := npb.AppClass(cls)
		if err != nil {
			return npb.Result{}, err
		}
		r, _ := npb.RunBT(p, threads)
		return r, nil
	case "SP":
		p, err := npb.AppClass(cls)
		if err != nil {
			return npb.Result{}, err
		}
		r, _ := npb.RunSP(p, threads)
		return r, nil
	case "LU":
		p, err := npb.AppClass(cls)
		if err != nil {
			return npb.Result{}, err
		}
		r, _ := npb.RunLU(p, threads)
		return r, nil
	}
	return npb.Result{}, fmt.Errorf("unknown benchmark %q", name)
}

// mops computes the benchmark's nominal Mop/s for the footer.
func mops(name string, cls npb.Class, elapsed time.Duration) float64 {
	switch name {
	case "EP":
		p, _ := npb.EPClass(cls)
		return npb.Mops(npb.EPOps(p), elapsed)
	case "IS":
		p, _ := npb.ISClass(cls)
		return npb.Mops(npb.ISOps(p), elapsed)
	case "CG":
		p, _ := npb.CGClass(cls)
		return npb.Mops(npb.CGOps(p, 2*p.NonZer*p.NA), elapsed)
	case "MG":
		p, _ := npb.MGClass(cls)
		return npb.Mops(npb.MGOps(p), elapsed)
	case "FT":
		p, _ := npb.FTClass(cls)
		return npb.Mops(npb.FTOps(p), elapsed)
	case "BT", "SP", "LU":
		p, _ := npb.AppClass(cls)
		return npb.Mops(npb.AppOps(p), elapsed)
	}
	return 0
}
