package xeonomp

// The benchmark harness: one testing.B benchmark per table and figure of
// the paper (see DESIGN.md section 4 for the experiment index), plus the
// ablation benches for the design choices the machine model calls out and
// functional-kernel benches for the NPB implementations.
//
// Each figure/table bench regenerates the experiment's data at a reduced
// instruction-budget scale per iteration and logs the rendered output once
// (visible with -v or in the benchmark output file). cmd/xeonchar runs the
// same experiments at full scale.

import (
	"context"
	"fmt"
	"os"
	"testing"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/lmbench"
	"xeonomp/internal/machine"
	"xeonomp/internal/npb"
	"xeonomp/internal/profiles"
	"xeonomp/internal/runcache"
	"xeonomp/internal/sched"
	"xeonomp/internal/units"
)

// benchScale returns the per-iteration work scale, overridable through
// XEONOMP_BENCH_SCALE for full-fidelity runs.
func benchScale(def float64) float64 {
	if v := os.Getenv("XEONOMP_BENCH_SCALE"); v != "" {
		var s float64
		if _, err := fmt.Sscanf(v, "%g", &s); err == nil && s > 0 {
			return s
		}
	}
	return def
}

func benchOptions(scale float64) core.Options {
	o := core.DefaultOptions()
	o.Scale = benchScale(scale)
	return o
}

// runSingleStudy / runPairStudy / runCrossStudy run a fresh study to
// completion — the run-and-return shorthand the figure/table benches use.
func runSingleStudy(opt core.Options) (*core.SingleStudy, error) {
	s := core.NewSingleStudy()
	if err := s.Run(context.Background(), opt); err != nil {
		return nil, err
	}
	return s, nil
}

func runPairStudy(opt core.Options) (*core.PairStudy, error) {
	s := core.NewPairStudy()
	if err := s.Run(context.Background(), opt); err != nil {
		return nil, err
	}
	return s, nil
}

func runCrossStudy(opt core.Options) (*core.CrossStudy, error) {
	s := core.NewCrossStudy()
	if err := s.Run(context.Background(), opt); err != nil {
		return nil, err
	}
	return s, nil
}

// BenchmarkStudyCacheCold runs the single-program study with an empty
// run cache each iteration — the price of simulating every cell. Compare
// with BenchmarkStudyCacheWarm (make bench-cache runs both).
func BenchmarkStudyCacheCold(b *testing.B) {
	opt := benchOptions(0.05)
	for i := 0; i < b.N; i++ {
		cache, err := runcache.New(0, "")
		if err != nil {
			b.Fatal(err)
		}
		opt.Cache = cache
		if _, err := runSingleStudy(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkStudyCacheWarm runs the same study against a pre-populated
// run cache, so every cell is a lookup — the warm-rerun price.
func BenchmarkStudyCacheWarm(b *testing.B) {
	opt := benchOptions(0.05)
	cache, err := runcache.New(0, "")
	if err != nil {
		b.Fatal(err)
	}
	opt.Cache = cache
	if _, err := runSingleStudy(opt); err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := runSingleStudy(opt); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkSection3Lmbench regenerates the paper's Section 3 platform
// measurements (latencies and bandwidths).
func BenchmarkSection3Lmbench(b *testing.B) {
	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		r, err := lmbench.Measure(m)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("L1 %.2f ns (1.43), L2 %.2f ns (10.6), mem %.2f ns (136.85), read %.2f/%.2f GB/s (3.57/4.43), write %.2f/%.2f GB/s (1.77/2.6)",
				r.L1Ns, r.L2Ns, r.MemNs, r.ReadBW1/1e9, r.ReadBW2/1e9, r.WriteBW1/1e9, r.WriteBW2/1e9)
		}
	}
}

// BenchmarkTable1Configurations regenerates Table 1 (configuration
// definitions applied to the machine).
func BenchmarkTable1Configurations(b *testing.B) {
	m, err := machine.New(machine.PaxvilleSMP())
	if err != nil {
		b.Fatal(err)
	}
	for i := 0; i < b.N; i++ {
		for _, cfg := range config.Table1() {
			if _, err := cfg.Apply(m); err != nil {
				b.Fatal(err)
			}
		}
		if i == 0 {
			b.Logf("\n%s", core.Table1Report().String())
		}
	}
}

// BenchmarkFigure2CounterPanels regenerates the nine Figure-2 panels
// (cache/TLB/branch/stall/bus/CPI metrics of the single-program study).
func BenchmarkFigure2CounterPanels(b *testing.B) {
	opt := benchOptions(0.1)
	for i := 0; i < b.N; i++ {
		study, err := runSingleStudy(opt)
		if err != nil {
			b.Fatal(err)
		}
		tables, err := study.Figure2Tables()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Logf("\n%s", t.String())
			}
		}
	}
}

// BenchmarkFigure3Speedups regenerates Figure 3 (single-program speedups).
func BenchmarkFigure3Speedups(b *testing.B) {
	opt := benchOptions(0.1)
	for i := 0; i < b.N; i++ {
		study, err := runSingleStudy(opt)
		if err != nil {
			b.Fatal(err)
		}
		t, err := study.Figure3Table()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t.String())
		}
	}
}

// BenchmarkTable2AverageSpeedups regenerates Table 2 (average speedup per
// architecture).
func BenchmarkTable2AverageSpeedups(b *testing.B) {
	opt := benchOptions(0.1)
	for i := 0; i < b.N; i++ {
		study, err := runSingleStudy(opt)
		if err != nil {
			b.Fatal(err)
		}
		t, err := study.Table2Report()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", t.String())
		}
	}
}

// BenchmarkFigure4MultiProgram regenerates Figure 4 (CG/FT, FT/FT, CG/CG
// pair metrics and speedups).
func BenchmarkFigure4MultiProgram(b *testing.B) {
	opt := benchOptions(0.08)
	for i := 0; i < b.N; i++ {
		study, err := runPairStudy(opt)
		if err != nil {
			b.Fatal(err)
		}
		tables, err := study.Figure4Tables()
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			for _, t := range tables {
				b.Logf("\n%s", t.String())
			}
		}
	}
}

// BenchmarkFigure5CrossProduct regenerates Figure 5 (box-and-whisker
// summary of all benchmark pairs per configuration).
func BenchmarkFigure5CrossProduct(b *testing.B) {
	opt := benchOptions(0.04)
	for i := 0; i < b.N; i++ {
		study, err := runCrossStudy(opt)
		if err != nil {
			b.Fatal(err)
		}
		if i == 0 {
			b.Logf("\n%s", study.Figure5Plot())
		}
	}
}

// ablationBench runs CG and MG on CMT and CMP-based SMP under a machine
// variant, logging the speedup deltas against the stock machine.
func ablationBench(b *testing.B, name string, mutate func(*machine.Config), policy *sched.Policy) {
	opt := benchOptions(0.08)
	varCfg := machine.PaxvilleSMP()
	mutate(&varCfg)
	variant := opt
	variant.Machine = &varCfg
	if policy != nil {
		variant.Policy = *policy
	}
	for i := 0; i < b.N; i++ {
		for _, bn := range []string{"CG", "MG"} {
			prof, err := profiles.ByName(bn)
			if err != nil {
				b.Fatal(err)
			}
			for _, arch := range []config.Arch{config.CMT, config.CMPSMP} {
				cfg, err := config.ByArch(arch)
				if err != nil {
					b.Fatal(err)
				}
				baseSerial, err := core.SerialBaseline(prof, opt)
				if err != nil {
					b.Fatal(err)
				}
				baseRun, err := core.RunSingle(prof, cfg, opt)
				if err != nil {
					b.Fatal(err)
				}
				varSerial, err := core.SerialBaseline(prof, variant)
				if err != nil {
					b.Fatal(err)
				}
				varRun, err := core.RunSingle(prof, cfg, variant)
				if err != nil {
					b.Fatal(err)
				}
				if i == 0 {
					b.Logf("%s on %s: base %.2fx, %s %.2fx", bn, cfg.Name,
						core.Speedup(baseSerial.WallCycles, baseRun.WallCycles), name,
						core.Speedup(varSerial.WallCycles, varRun.WallCycles))
				}
			}
		}
	}
}

// BenchmarkAblationPrefetcherOff quantifies the stream prefetcher's
// contribution.
func BenchmarkAblationPrefetcherOff(b *testing.B) {
	ablationBench(b, "no-prefetch", func(c *machine.Config) { c.PrefetchGate = -1 }, nil)
}

// BenchmarkAblationBusHalved quantifies FSB bandwidth sensitivity.
func BenchmarkAblationBusHalved(b *testing.B) {
	ablationBench(b, "half-bus", func(c *machine.Config) { c.FSBBandwidth /= 2 }, nil)
}

// BenchmarkAblationL2Doubled quantifies L2 capacity sensitivity (the
// HT-thrash mechanism).
func BenchmarkAblationL2Doubled(b *testing.B) {
	ablationBench(b, "2MiB-L2", func(c *machine.Config) { c.L2.Size = 2 * units.MiB }, nil)
}

// BenchmarkAblationNoSMTPartitioning removes the HT buffer-partitioning and
// port-contention penalties.
func BenchmarkAblationNoSMTPartitioning(b *testing.B) {
	ablationBench(b, "ideal-SMT", func(c *machine.Config) {
		c.Lat.SMTSharedMLP = 1.0
		c.Lat.SMTClash = 0
	}, nil)
}

// BenchmarkCell measures raw per-cell simulation speed for the cell kinds
// the engine optimizations move: the memory-bound CG (dominated by cache
// and bus model traffic) against the compute-bound EP (dominated by the
// issue loop), each serial, with Hyper-Threading sharing one core, and
// with two dedicated cores. cmd/benchsnap runs the same grid to produce
// the BENCH_*.json trajectory; these benchmarks are the interactive view
// (compare with benchstat across commits). The bytes/s column reads as
// simulated instructions per second.
func BenchmarkCell(b *testing.B) {
	for _, bn := range []string{"CG", "EP"} {
		prof, err := profiles.ByName(bn)
		if err != nil {
			b.Fatal(err)
		}
		for _, cn := range []string{"Serial", "HT on -2-1", "HT off -2-2"} {
			cfg, err := config.ByName(cn)
			if err != nil {
				b.Fatal(err)
			}
			b.Run(fmt.Sprintf("%s/%s", bn, cn), func(b *testing.B) {
				opt := benchOptions(0.1)
				b.SetBytes(int64(float64(prof.SerialInstr) * opt.Scale))
				b.ReportAllocs()
				for i := 0; i < b.N; i++ {
					if _, err := core.RunSingle(prof, cfg, opt); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// BenchmarkSimulatorThroughput measures raw simulation speed: simulated
// instructions per second for a serial CG run.
func BenchmarkSimulatorThroughput(b *testing.B) {
	cg, err := profiles.ByName("CG")
	if err != nil {
		b.Fatal(err)
	}
	serial, err := config.ByArch(config.Serial)
	if err != nil {
		b.Fatal(err)
	}
	opt := benchOptions(0.1)
	instr := int64(float64(cg.SerialInstr) * opt.Scale)
	b.SetBytes(instr) // bytes/s metric reads as simulated instructions/s
	for i := 0; i < b.N; i++ {
		if _, err := core.RunSingle(cg, serial, opt); err != nil {
			b.Fatal(err)
		}
	}
}

// Functional NPB kernel benchmarks (real computation, class S).
func BenchmarkNPB(b *testing.B) {
	type runner func(threads int) npb.Result
	kernels := []struct {
		name string
		run  runner
	}{
		{"EP", func(n int) npb.Result { p, _ := npb.EPClass(npb.ClassS); r, _ := npb.RunEP(p, n); return r }},
		{"IS", func(n int) npb.Result { p, _ := npb.ISClass(npb.ClassS); return npb.RunIS(p, n) }},
		{"CG", func(n int) npb.Result { p, _ := npb.CGClass(npb.ClassS); r, _ := npb.RunCG(p, n); return r }},
		{"MG", func(n int) npb.Result { p, _ := npb.MGClass(npb.ClassS); r, _ := npb.RunMG(p, n); return r }},
		{"FT", func(n int) npb.Result { p, _ := npb.FTClass(npb.ClassT); r, _ := npb.RunFT(p, n); return r }},
		{"BT", func(n int) npb.Result { p, _ := npb.AppClass(npb.ClassS); r, _ := npb.RunBT(p, n); return r }},
		{"SP", func(n int) npb.Result { p, _ := npb.AppClass(npb.ClassS); r, _ := npb.RunSP(p, n); return r }},
		{"LU", func(n int) npb.Result { p, _ := npb.AppClass(npb.ClassS); r, _ := npb.RunLU(p, n); return r }},
	}
	for _, k := range kernels {
		for _, threads := range []int{1, 4} {
			b.Run(fmt.Sprintf("%s/threads=%d", k.name, threads), func(b *testing.B) {
				for i := 0; i < b.N; i++ {
					res := k.run(threads)
					if !res.Verified {
						b.Fatalf("%s failed verification: %s", k.name, res.Detail)
					}
				}
			})
		}
	}
}
