#!/bin/sh
# Assert the checked-in CPU profile (cmd/xeonchar/default.pgo) has not
# drifted from the source it claims to describe. Three checks:
#
#   1. the profile decodes and yields a non-empty hot set
#   2. no module-prefixed profile name fails to resolve onto a declared
#      function (renamed/deleted hot functions make the profile stale)
#   3. the hot set still lands on the packages the benchsnap grid
#      measures (internal/cpu, internal/machine, internal/trace,
#      internal/cache) — a profile that no longer agrees with where the
#      benchmarks spend time is lying to the hot-tier analyzers
#
# Regenerate the profile with `make profile` and copy the cpu.pprof over
# cmd/xeonchar/default.pgo when this fails after a legitimate hot-path
# rename.
set -eu

cd "$(dirname "$0")/.."

report="$(go run ./cmd/xeonlint -hot-report ./... 2>&1)" || {
    echo "pgo-freshness: xeonlint -hot-report failed:" >&2
    echo "$report" >&2
    exit 1
}

hot_lines="$(printf '%s\n' "$report" | grep -c 'flat in profile')" || hot_lines=0
if [ "$hot_lines" -eq 0 ]; then
    echo "pgo-freshness: default.pgo produced no profile-hot functions" >&2
    printf '%s\n' "$report" >&2
    exit 1
fi

if printf '%s\n' "$report" | grep -q '^unresolved:'; then
    echo "pgo-freshness: profile names no longer present in the source:" >&2
    printf '%s\n' "$report" | grep '^unresolved:' >&2
    echo "pgo-freshness: regenerate with 'make profile' and refresh cmd/xeonchar/default.pgo" >&2
    exit 1
fi

missing=0
for pkg in internal/cpu internal/machine internal/trace internal/cache; do
    if ! printf '%s\n' "$report" | grep -q "xeonomp/$pkg\."; then
        echo "pgo-freshness: hot set misses benchmarked package $pkg" >&2
        missing=1
    fi
done
if [ "$missing" -ne 0 ]; then
    echo "pgo-freshness: profile no longer covers the benchsnap grid; regenerate with 'make profile'" >&2
    exit 1
fi

echo "pgo-freshness: ok ($hot_lines profile-hot functions, benchmarked packages covered)"
