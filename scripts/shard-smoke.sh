#!/usr/bin/env bash
# End-to-end smoke gate for sharded execution (make shard-smoke, mirrored
# by the shard-smoke CI job): two worker daemons, one sharding frontend.
#
#   1. build cmd/xeond and cmd/xeonctl,
#   2. boot two worker xeond daemons on ephemeral loopback ports, then a
#      frontend xeond with -shard pointing at both,
#   3. submit the single-program study at the golden scale through the
#      frontend and byte-compare every downloaded artifact against
#      testdata/golden — sharding must not change a single byte,
#   4. assert the work actually scattered: both workers' /metrics show
#      simulated cells,
#   5. failover: boot a fresh cold fleet, start the same study again,
#      kill one worker mid-study, and require the study to finish on the
#      survivor with byte-identical artifacts and a non-zero
#      shard.failovers counter on the frontend,
#   6. shut everything down cleanly.
#
# Scale and seed must match how testdata/golden was generated (see
# GOLDEN_SCALE in the Makefile): the goldens are at scale 0.1, seed 1 —
# exactly the server-side defaults for seed, so only the scale is passed.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_DIR=testdata/golden
GOLDEN_SCALE=${GOLDEN_SCALE:-0.1}
SMOKE_DIR=${SMOKE_DIR:-$(mktemp -d)}
mkdir -p "$SMOKE_DIR/journals1" "$SMOKE_DIR/journals2"

say() { echo "shard-smoke: $*"; }
fail() { say "FAIL: $*"; exit 1; }

say "building xeond and xeonctl into $SMOKE_DIR"
go build -o "$SMOKE_DIR/xeond" ./cmd/xeond
go build -o "$SMOKE_DIR/xeonctl" ./cmd/xeonctl

PIDS=()
cleanup() {
    for pid in "${PIDS[@]}"; do
        kill "$pid" 2>/dev/null || true
    done
    for pid in "${PIDS[@]}"; do
        wait "$pid" 2>/dev/null || true
    done
}
trap cleanup EXIT

# boot <name> <extra flags...>: start one xeond, wait for its address
# file, and publish BOOTED_ADDR/BOOTED_PID.
boot() {
    local name=$1
    shift
    "$SMOKE_DIR/xeond" -addr 127.0.0.1:0 -addr-file "$SMOKE_DIR/$name.addr" \
        "$@" >"$SMOKE_DIR/$name.log" 2>&1 &
    BOOTED_PID=$!
    PIDS+=("$BOOTED_PID")
    for _ in $(seq 1 100); do
        [ -s "$SMOKE_DIR/$name.addr" ] && break
        kill -0 "$BOOTED_PID" 2>/dev/null || { cat "$SMOKE_DIR/$name.log"; fail "$name died during boot"; }
        sleep 0.1
    done
    [ -s "$SMOKE_DIR/$name.addr" ] || fail "$name never published its address"
    BOOTED_ADDR=$(cat "$SMOKE_DIR/$name.addr")
    say "$name is serving on $BOOTED_ADDR"
}

ctl() { local server=$1; shift; "$SMOKE_DIR/xeonctl" -server "http://$server" "$@"; }

# metric <addr> <name>: scrape one counter from a daemon's /metrics.
metric() {
    ctl "$1" metrics | grep -o "\"$2\": [0-9.]*" | awk '{print $2}'
}

boot worker1
WORKER1=$BOOTED_ADDR
boot worker2
WORKER2=$BOOTED_ADDR
boot frontend1 -journal-dir "$SMOKE_DIR/journals1" -shard "http://$WORKER1,http://$WORKER2"
FRONTEND1=$BOOTED_ADDR

say "run 1: single study at scale $GOLDEN_SCALE through the sharded frontend"
ctl "$FRONTEND1" study -name single -scale "$GOLDEN_SCALE" -q -out "$SMOKE_DIR/run1" >"$SMOKE_DIR/run1.json"

ARTIFACTS=0
for f in "$SMOKE_DIR"/run1/*.json; do
    name=$(basename "$f")
    [ -f "$GOLDEN_DIR/$name" ] || fail "no golden counterpart for artifact $name"
    cmp -s "$f" "$GOLDEN_DIR/$name" || fail "artifact $name from the sharded run differs from $GOLDEN_DIR/$name"
    say "artifact $name is byte-identical to its golden"
    ARTIFACTS=$((ARTIFACTS + 1))
done
[ "$ARTIFACTS" -ge 4 ] || fail "expected >= 4 artifacts, got $ARTIFACTS"

# The frontend must have scattered real work to both workers.
for w in "$WORKER1" "$WORKER2"; do
    COMPUTED=$(metric "$w" core.cells_computed)
    [ -n "$COMPUTED" ] || fail "worker $w /metrics has no core.cells_computed counter"
    awk -v c="$COMPUTED" 'BEGIN { exit !(c >= 1) }' \
        || fail "worker $w simulated no cells; the shard never scattered"
    say "worker $w simulated $COMPUTED cells"
done
SENT=$(metric "$FRONTEND1" shard.cells_sent)
say "frontend dispatched $SENT cells across 2 workers"

say "run 2: failover — fresh fleet, kill worker4 mid-study"
# Fresh workers so their caches are cold: the study takes real wall time
# again, leaving a wide window to kill a worker mid-flight.
boot worker3
WORKER3=$BOOTED_ADDR
boot worker4
WORKER4=$BOOTED_ADDR
WORKER4_PID=$BOOTED_PID
boot frontend2 -journal-dir "$SMOKE_DIR/journals2" -shard "http://$WORKER3,http://$WORKER4"
FRONTEND2=$BOOTED_ADDR

ctl "$FRONTEND2" study -name single -scale "$GOLDEN_SCALE" -q -out "$SMOKE_DIR/run2" >"$SMOKE_DIR/run2.json" &
CTL_PID=$!
# Wait until the study is demonstrably mid-flight (the frontend has
# dispatched a few cells — shard.cells_sent moves even when the workers
# serve from their warm caches), then kill worker2 hard.
KILLED=0
for _ in $(seq 1 300); do
    if ! kill -0 "$CTL_PID" 2>/dev/null; then
        break # study already finished: too fast to kill mid-study
    fi
    DONE=$(metric "$FRONTEND2" shard.cells_sent || true)
    if [ -n "$DONE" ] && awk -v d="$DONE" 'BEGIN { exit !(d >= 3) }'; then
        kill -9 "$WORKER4_PID" 2>/dev/null || true
        wait "$WORKER4_PID" 2>/dev/null || true # reap quietly
        KILLED=1
        say "killed worker4 ($WORKER4) after $DONE dispatched cells"
        break
    fi
    sleep 0.1
done
[ "$KILLED" -eq 1 ] || fail "study finished before worker4 could be killed mid-flight; lower the poll threshold"
wait "$CTL_PID" || { cat "$SMOKE_DIR/frontend2.log"; fail "study did not survive the worker kill"; }

for f in "$SMOKE_DIR"/run2/*.json; do
    name=$(basename "$f")
    cmp -s "$f" "$GOLDEN_DIR/$name" || fail "artifact $name after failover differs from $GOLDEN_DIR/$name"
done
FAILOVERS=$(metric "$FRONTEND2" shard.failovers)
[ -n "$FAILOVERS" ] || fail "frontend /metrics has no shard.failovers counter"
awk -v f="$FAILOVERS" 'BEGIN { exit !(f >= 1) }' \
    || fail "shard.failovers is $FAILOVERS after a mid-study worker kill"
say "failover artifacts byte-identical, shard.failovers=$FAILOVERS"

say "PASS: sharded run byte-identical to golden, both workers exercised, mid-study failover survived"
