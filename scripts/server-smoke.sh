#!/usr/bin/env bash
# End-to-end smoke gate for the experiment server (make server-smoke,
# mirrored by the server-smoke CI job):
#
#   1. build cmd/xeond and cmd/xeonctl,
#   2. boot the daemon on an ephemeral loopback port,
#   3. submit the single-program study at the golden scale through the
#      client and byte-compare every downloaded artifact against
#      testdata/golden — the remote-equivalence contract,
#   4. submit the identical study again and require the rerun to be
#      served entirely from cache (byte-identical artifacts, and the
#      /metrics core.cells_cached counter covering every cell),
#   5. shut the daemon down cleanly.
#
# Scale and seed must match how testdata/golden was generated (see
# GOLDEN_SCALE in the Makefile): the goldens are at scale 0.1, seed 1 —
# exactly the server-side defaults for seed, so only the scale is passed.
set -euo pipefail
cd "$(dirname "$0")/.."

GOLDEN_DIR=testdata/golden
GOLDEN_SCALE=${GOLDEN_SCALE:-0.1}
SMOKE_DIR=${SMOKE_DIR:-$(mktemp -d)}
mkdir -p "$SMOKE_DIR/journals"

say() { echo "server-smoke: $*"; }
fail() { say "FAIL: $*"; exit 1; }

say "building xeond and xeonctl into $SMOKE_DIR"
go build -o "$SMOKE_DIR/xeond" ./cmd/xeond
go build -o "$SMOKE_DIR/xeonctl" ./cmd/xeonctl

"$SMOKE_DIR/xeond" -addr 127.0.0.1:0 -addr-file "$SMOKE_DIR/addr" \
    -journal-dir "$SMOKE_DIR/journals" >"$SMOKE_DIR/xeond.log" 2>&1 &
XEOND_PID=$!
cleanup() {
    kill "$XEOND_PID" 2>/dev/null || true
    wait "$XEOND_PID" 2>/dev/null || true
}
trap cleanup EXIT

for _ in $(seq 1 100); do
    [ -s "$SMOKE_DIR/addr" ] && break
    kill -0 "$XEOND_PID" 2>/dev/null || { cat "$SMOKE_DIR/xeond.log"; fail "xeond died during boot"; }
    sleep 0.1
done
[ -s "$SMOKE_DIR/addr" ] || fail "xeond never published its address"
ADDR=$(cat "$SMOKE_DIR/addr")
SERVER="http://$ADDR"
say "xeond is serving on $ADDR"

ctl() { "$SMOKE_DIR/xeonctl" -server "$SERVER" "$@"; }

say "run 1: single study at scale $GOLDEN_SCALE over HTTP"
ctl study -name single -scale "$GOLDEN_SCALE" -q -out "$SMOKE_DIR/run1" >"$SMOKE_DIR/run1.json"

ARTIFACTS=0
for f in "$SMOKE_DIR"/run1/*.json; do
    name=$(basename "$f")
    [ -f "$GOLDEN_DIR/$name" ] || fail "no golden counterpart for artifact $name"
    cmp -s "$f" "$GOLDEN_DIR/$name" || fail "artifact $name served over HTTP differs from $GOLDEN_DIR/$name"
    say "artifact $name is byte-identical to its golden"
    ARTIFACTS=$((ARTIFACTS + 1))
done
[ "$ARTIFACTS" -ge 4 ] || fail "expected >= 4 artifacts, got $ARTIFACTS"

say "run 2: identical study again (must be served from cache)"
ctl study -name single -scale "$GOLDEN_SCALE" -q -out "$SMOKE_DIR/run2" >"$SMOKE_DIR/run2.json"
for f in "$SMOKE_DIR"/run1/*.json; do
    name=$(basename "$f")
    cmp -s "$f" "$SMOKE_DIR/run2/$name" || fail "rerun artifact $name differs from run 1"
done

# The study expands to a fixed number of cells; the rerun must have been
# served entirely without simulation, visible as core.cells_cached in the
# daemon's own /metrics covering at least every cell of one run.
CELLS=$(grep -o '"cells": [0-9]*' "$SMOKE_DIR/run1.json" | head -1 | awk '{print $2}')
[ -n "$CELLS" ] && [ "$CELLS" -gt 0 ] || fail "could not read the study's cell count from run1.json"
ctl metrics >"$SMOKE_DIR/metrics.json"
CACHED=$(grep -o '"core.cells_cached": [0-9.]*' "$SMOKE_DIR/metrics.json" | awk '{print $2}')
[ -n "$CACHED" ] || fail "/metrics has no core.cells_cached counter"
awk -v cached="$CACHED" -v cells="$CELLS" 'BEGIN { exit !(cached >= cells) }' \
    || fail "core.cells_cached is $CACHED after a warm rerun of $CELLS cells"
say "cache hit counter: core.cells_cached=$CACHED covers the $CELLS-cell rerun"

say "PASS: byte-identical artifacts, fully cached rerun ($ARTIFACTS artifacts, $CELLS cells)"
