# Convenience targets for the xeonomp reproduction.

GO ?= go

.PHONY: build test test-short race bench bench-cache check figures figures-cached lmbench ablations fmt vet clean

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

# Full suite, including the integration shape studies (~5 minutes).
test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# One benchmark per paper table/figure; XEONOMP_BENCH_SCALE overrides the
# per-iteration workload scale.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# The full gate: build, vet, formatting, and the race-enabled test suite.
check:
	$(GO) build ./...
	$(GO) vet ./...
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) test -race ./...

# Cold-vs-warm study time through the run cache (see internal/runcache).
bench-cache:
	$(GO) test -run '^$$' -bench 'BenchmarkStudyCache(Cold|Warm)' -benchtime=3x -benchmem

# Regenerate every table and figure at full scale (~25 minutes cold; a
# warm rerun against the same cache directory is mostly lookups).
figures:
	$(GO) run ./cmd/xeonchar -all -scale 1.0

figures-cached:
	$(GO) run ./cmd/xeonchar -all -scale 1.0 -cache-dir .xeonchar-cache -journal .xeonchar-cache/run.jsonl -resume

lmbench:
	$(GO) run ./cmd/lmbench

ablations:
	$(GO) run ./cmd/sweep -ablation all

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
