# Convenience targets for the xeonomp reproduction.

GO ?= go

.PHONY: build test test-short race race-conc bench bench-cache bench-snapshot check ci check-golden update-golden figures figures-cached lmbench ablations profile fmt vet lint lint-conc lint-hot lint-fix lint-fix-clean pgo-fresh server-smoke shard-smoke clean

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

# Full suite, including the integration shape studies (~5 minutes).
test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# Full (non-short) race pass over the concurrency-heavy packages the
# goleak/lockorder analyzers police statically; CI runs this leg in its
# test matrix. The race detector turns the full core suite's ~2 minutes
# into ~25 (the integration shape studies are memory-access-heavy, the
# detector's worst case), so the default 10m per-package test timeout
# is not enough.
race-conc:
	$(GO) test -race -timeout 40m ./internal/server/... ./internal/core/...

# One benchmark per paper table/figure; XEONOMP_BENCH_SCALE overrides the
# per-iteration workload scale. -run '^$$' keeps the unit-test suite from
# re-running before the benchmarks do.
bench:
	$(GO) test -run '^$$' -bench=. -benchmem -benchtime=1x

# Static analysis: go vet plus the repo's own analyzers (cmd/xeonlint —
# nondeterminism taint, dimension inference, unit safety, dropped errors,
# context flow, goroutine leaks, lock ordering, counter/golden parity,
# and the profile-guided hot tier: hotalloc, hotcall, benchparity).
# Depends on build so vet and xeonlint share one warm build cache; -v
# prints per-analyzer wall time so lint-job runtime regressions show up
# in CI logs.
lint: build
	$(GO) vet ./...
	$(GO) run ./cmd/xeonlint -v ./...

# Just the concurrency suite — the heavier interprocedural passes — for a
# quick pre-push check of server/engine changes.
lint-conc: build
	$(GO) run ./cmd/xeonlint -v -only ctxflow,goleak,lockorder ./...

# Just the profile-guided performance tier, for hot-path work.
lint-hot: build
	$(GO) run ./cmd/xeonlint -v -only hot ./...

# Assert the checked-in CPU profile still matches the source: it must
# decode, resolve onto module functions, and keep the benchmarked engine
# packages in its hot set. Regenerate with `make profile` after renaming
# hot functions.
pgo-fresh: build
	./scripts/pgo-freshness.sh

# Apply every machine-applicable fix xeonlint proposes (magic-literal →
# units.* rewrites, explicit `_ =` error drops), in place.
lint-fix: build
	$(GO) run ./cmd/xeonlint -fix ./...

# Fail if xeonlint still has fixes pending — the CI guard that keeps the
# tree converged under `make lint-fix`. Prints the unified diff.
lint-fix-clean: build
	$(GO) run ./cmd/xeonlint -diff ./...

# The full gate: build, lint, formatting, and the race-enabled test suite.
check: lint
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) test -race ./...

# GOLDEN_SCALE is the reduced instruction-budget scale the checked-in
# testdata/golden artifacts were generated at; -check refuses to compare
# across scales, so the two targets below must agree.
GOLDEN_SCALE := 0.1

# The run cache under .xeonchar-cache is keyed by a hash of the Go sources
# (tracked and untracked), so any code change starts from a cold cache — a
# stale cached cell can never mask real metric drift. CI persists the same
# directory with the same keying (see .github/workflows/ci.yml).
SRC_HASH := $(shell git ls-files -co --exclude-standard -- '*.go' go.mod | xargs sha256sum 2>/dev/null | sha256sum | cut -c1-16)

# Mirrors .github/workflows/ci.yml step for step, so contributors can
# reproduce a CI failure locally with a bare `make ci`.
ci:
	$(MAKE) lint
	@out="$$(gofmt -l .)"; if [ -n "$$out" ]; then \
		echo "gofmt needed on:"; echo "$$out"; exit 1; fi
	$(GO) test -race -short ./...
	$(MAKE) check-golden
	$(MAKE) bench-snapshot

# The paper-fidelity gate alone: rerun every study at the golden scale and
# diff against the checked-in artifacts with their tolerance bands. The
# metrics snapshot (cache hit rates, cell latencies, worker utilization)
# lands in golden-metrics.json; CI uploads it as a build artifact.
check-golden:
	$(GO) run ./cmd/xeonchar -check testdata/golden -scale $(GOLDEN_SCALE) \
		-cache-dir .xeonchar-cache/$(SRC_HASH) -progress 30s \
		-metrics-out golden-metrics.json

# Regenerate testdata/golden after an *intentional* metric change; commit
# the diff so review sees exactly which paper numbers moved.
update-golden:
	$(GO) run ./cmd/xeonchar -update-golden -scale $(GOLDEN_SCALE) \
		-cache-dir .xeonchar-cache/$(SRC_HASH) -progress 30s

# Cold-vs-warm study time through the run cache (see internal/runcache).
bench-cache:
	$(GO) test -run '^$$' -bench 'BenchmarkStudyCache(Cold|Warm)' -benchtime=3x -benchmem

# Raw-speed trajectory (see PERFORMANCE.md): measure simulator throughput
# on the fixed cmd/benchsnap grid, write the fresh measurement to
# bench-snapshot.json (CI uploads it as an artifact), and gate against the
# newest checked-in BENCH_*.json — a >20% total cells/s regression fails.
# To pin a new baseline after an intentional speed change:
#   go run ./cmd/benchsnap -reps 5 -out BENCH_$$(date +%Y%m%d).json -date $$(date +%Y-%m-%d)
BENCH_BASELINE := $(lastword $(sort $(wildcard BENCH_*.json)))
# -best 3 keeps the fastest of three full measurements before the gate:
# shared-runner noise only ever slows a run down, so the max is the
# honest throughput estimate and the gate stops tripping on scheduler
# weather instead of engine regressions.
bench-snapshot:
	$(GO) run ./cmd/benchsnap -reps 5 -best 3 -out bench-snapshot.json \
		$(if $(BENCH_BASELINE),-check $(BENCH_BASELINE))

# End-to-end smoke gate for the experiment server: build cmd/xeond and
# cmd/xeonctl, boot the daemon on loopback, run the single-program study
# over HTTP at the golden scale, byte-compare the served artifacts
# against testdata/golden, rerun it warm, and assert the /metrics cache
# counter covered every cell. Mirrors the server-smoke CI job.
server-smoke:
	GOLDEN_SCALE=$(GOLDEN_SCALE) bash scripts/server-smoke.sh

# End-to-end smoke gate for sharded execution: two worker daemons plus a
# sharding frontend serve the golden-scale study byte-identically, both
# workers receive cells, and a mid-study worker kill fails over to the
# survivor. Mirrors the shard-smoke CI job.
shard-smoke:
	GOLDEN_SCALE=$(GOLDEN_SCALE) bash scripts/shard-smoke.sh

# Regenerate every table and figure at full scale (~25 minutes cold; a
# warm rerun against the same cache directory is mostly lookups).
figures:
	$(GO) run ./cmd/xeonchar -all -scale 1.0

figures-cached:
	$(GO) run ./cmd/xeonchar -all -scale 1.0 -cache-dir .xeonchar-cache -journal .xeonchar-cache/run.jsonl -resume

# One observed full pass at reduced scale: CPU profile with per-cell
# pprof labels (slice with `go tool pprof -tagfocus benchmark=CG
# cpu.pprof`), a Chrome trace of study/cell spans (load trace.json in
# chrome://tracing or Perfetto), and the metric registry snapshot.
profile:
	$(GO) run ./cmd/xeonchar -all -scale 0.1 \
		-cpuprofile cpu.pprof -trace-out trace.json -metrics-out metrics.json

lmbench:
	$(GO) run ./cmd/lmbench

ablations:
	$(GO) run ./cmd/sweep -ablation all

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
