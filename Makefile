# Convenience targets for the xeonomp reproduction.

GO ?= go

.PHONY: build test test-short race bench figures lmbench ablations fmt vet clean

build:
	$(GO) build ./...

test-short:
	$(GO) test -short ./...

# Full suite, including the integration shape studies (~5 minutes).
test:
	$(GO) test ./...

race:
	$(GO) test -race -short ./...

# One benchmark per paper table/figure; XEONOMP_BENCH_SCALE overrides the
# per-iteration workload scale.
bench:
	$(GO) test -bench=. -benchmem -benchtime=1x

# Regenerate every table and figure at full scale (~25 minutes).
figures:
	$(GO) run ./cmd/xeonchar -all -scale 1.0

lmbench:
	$(GO) run ./cmd/lmbench

ablations:
	$(GO) run ./cmd/sweep -ablation all

fmt:
	gofmt -w .

vet:
	$(GO) vet ./...

clean:
	$(GO) clean ./...
