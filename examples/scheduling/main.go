// Scheduling: show how thread placement changes multi-program performance
// on the same hardware configuration — the knob the paper's conclusion says
// future OS schedulers should exploit. Alternating placement puts one CG
// and one FT thread on each core (complementary resource use); block
// placement gives CG one chip and FT the other.
package main

import (
	"fmt"
	"log"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/profiles"
	"xeonomp/internal/sched"
)

func main() {
	cg, err := profiles.ByName("CG")
	if err != nil {
		log.Fatal(err)
	}
	ft, err := profiles.ByName("FT")
	if err != nil {
		log.Fatal(err)
	}
	w := core.Pair(cg, ft)

	cfg, err := config.ByArch(config.CMTSMP) // HT on -8-2: the full machine
	if err != nil {
		log.Fatal(err)
	}

	opt, err := core.NewOptions(core.WithScale(0.25))
	if err != nil {
		log.Fatal(err)
	}
	base := map[string]int64{}
	for _, p := range w.Programs {
		s, err := core.SerialBaseline(p, opt)
		if err != nil {
			log.Fatal(err)
		}
		base[p.Name] = s.WallCycles
	}

	fmt.Printf("CG/FT on %s under different thread placements:\n\n", cfg.Name)
	for _, pol := range []sched.Policy{sched.Alternate, sched.Block} {
		o := opt
		o.Policy = pol
		res, err := core.Run(w, cfg, o)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Printf("%-12s wall=%9d cycles", pol, res.WallCycles)
		for gi, p := range res.Programs {
			fmt.Printf("  %s %.2fx (CPI %.2f)", p.Benchmark,
				core.Speedup(base[p.Benchmark], p.Cycles), res.Programs[gi].Metrics.CPI)
		}
		fmt.Println()
	}
	fmt.Println("\nalternate = each core runs one CG and one FT context (complementary)")
	fmt.Println("block     = CG owns chip 0, FT owns chip 1")
}
