// Custommachine: the machine model is not hard-wired to the paper's box.
// This example builds a hypothetical next-generation platform — one chip
// with four non-HT cores, 2 MiB L2 per core, and a faster bus — and compares
// MG's scaling against the Paxville CMP-based SMP, a what-if the paper's
// conclusions invite.
package main

import (
	"fmt"
	"log"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/machine"
	"xeonomp/internal/profiles"
	"xeonomp/internal/units"
)

func main() {
	mg, err := profiles.ByName("MG")
	if err != nil {
		log.Fatal(err)
	}
	opt, err := core.NewOptions(core.WithScale(0.25))
	if err != nil {
		log.Fatal(err)
	}

	// Baseline: the paper's machine, CMP-based SMP (4 cores over 2 chips).
	cmpSMP, err := config.ByArch(config.CMPSMP)
	if err != nil {
		log.Fatal(err)
	}
	serial, err := core.SerialBaseline(mg, opt)
	if err != nil {
		log.Fatal(err)
	}
	baseRes, err := core.RunSingle(mg, cmpSMP, opt)
	if err != nil {
		log.Fatal(err)
	}

	// Custom: one chip, four cores, no HT, 2 MiB L2, 6.4 GB/s bus.
	custom := machine.PaxvilleSMP()
	custom.Chips = 1
	custom.CoresPerChip = 4
	custom.ContextsPerCore = 1
	custom.L2.Size = 2 * units.MiB
	custom.FSBBandwidth = 6.4 * units.GB
	custom.Mem.ChannelBandwidth = 8.0 * units.GB / 2

	quadCfg := config.Configuration{
		Name: "quad-core -4-1", Arch: "quad-core CMP", Threads: 4, Chips: 1,
		Contexts: []config.CtxID{
			{Chip: 0, Core: 0}, {Chip: 0, Core: 1}, {Chip: 0, Core: 2}, {Chip: 0, Core: 3},
		},
	}
	serialCfg := config.Configuration{
		Name: "custom serial", Arch: config.Serial, Threads: 1, Chips: 1,
		Contexts: []config.CtxID{{Chip: 0, Core: 0}},
	}

	optC := opt
	optC.Machine = &custom
	customSerial, err := core.Run(core.Single(mg), serialCfg, optC)
	if err != nil {
		log.Fatal(err)
	}
	customRes, err := core.Run(core.Single(mg), quadCfg, optC)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Println("MG, 4 threads, two platforms:")
	fmt.Printf("  Paxville SMP  (%s): speedup %.2fx, L2 miss %.3f, CPI %.2f\n",
		cmpSMP.Name,
		core.Speedup(serial.WallCycles, baseRes.WallCycles),
		baseRes.Programs[0].Metrics.L2MissRate, baseRes.Programs[0].Metrics.CPI)
	fmt.Printf("  quad-core chip (%s): speedup %.2fx, L2 miss %.3f, CPI %.2f\n",
		quadCfg.Name,
		core.Speedup(customSerial.WallCycles, customRes.WallCycles),
		customRes.Programs[0].Metrics.L2MissRate, customRes.Programs[0].Metrics.CPI)
	fmt.Println("\n(speedups are each over the same workload run serially on that platform)")
}
