// Quickstart: simulate the paper's machine, run the CG workload on a single
// HT-enabled dual-core chip (the CMT configuration), and print the hardware
// counters and the speedup over serial — the minimal end-to-end use of the
// library.
package main

import (
	"fmt"
	"log"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/counters"
	"xeonomp/internal/profiles"
)

func main() {
	// 1. Pick a benchmark profile (class-B CG) and a Table-1 configuration.
	cg, err := profiles.ByName("CG")
	if err != nil {
		log.Fatal(err)
	}
	cmt, err := config.ByArch(config.CMT) // "HT on -4-1": one chip, both cores, HT on
	if err != nil {
		log.Fatal(err)
	}

	// 2. Run it, plus the serial baseline, at a reduced scale for a quick
	// demonstration.
	opt, err := core.NewOptions(core.WithScale(0.25))
	if err != nil {
		log.Fatal(err)
	}

	serial, err := core.SerialBaseline(cg, opt)
	if err != nil {
		log.Fatal(err)
	}
	res, err := core.RunSingle(cg, cmt, opt)
	if err != nil {
		log.Fatal(err)
	}

	// 3. Report.
	p := res.Programs[0]
	m := p.Metrics
	fmt.Printf("CG on %s (%s)\n", cmt.Name, cmt.Arch)
	fmt.Printf("  threads:              %d\n", p.Threads)
	fmt.Printf("  wall cycles:          %d (serial %d)\n", res.WallCycles, serial.WallCycles)
	fmt.Printf("  speedup over serial:  %.2fx\n", core.Speedup(serial.WallCycles, res.WallCycles))
	fmt.Printf("  CPI:                  %.2f\n", m.CPI)
	fmt.Printf("  L1 / L2 miss rate:    %.3f / %.3f\n", m.L1MissRate, m.L2MissRate)
	fmt.Printf("  trace cache misses:   %.3f\n", m.TCMissRate)
	fmt.Printf("  branch prediction:    %.1f%%\n", m.BranchPredRate)
	fmt.Printf("  stalled cycles:       %.1f%%\n", m.StalledPct)
	fmt.Printf("  prefetch bus share:   %.1f%%\n", m.PrefetchBusPct)
	fmt.Printf("  bus transactions:     %d\n", counters.BusTransactions(&p.Counters))
}
