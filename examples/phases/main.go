// Phases: attach the VTune-style counter sampler to a run and print how the
// machine-wide metrics evolve over time — warm-up transients, the counter
// reset at the measurement boundary, and steady state. The same view is
// available from the CLI as `xeonchar -phases CG -arch CMT`.
package main

import (
	"fmt"
	"log"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/counters"
	"xeonomp/internal/profiles"
)

func main() {
	mg, err := profiles.ByName("MG")
	if err != nil {
		log.Fatal(err)
	}
	cmt, err := config.ByArch(config.CMT)
	if err != nil {
		log.Fatal(err)
	}

	// 400_000-cycle windows: ~143 us at 2.8 GHz.
	opt, err := core.NewOptions(core.WithScale(0.2), core.WithSampleInterval(400_000))
	if err != nil {
		log.Fatal(err)
	}

	res, err := core.RunSingle(mg, cmt, opt)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("MG on %s, %d-cycle windows:\n\n", cmt.Name, opt.SampleInterval)
	fmt.Printf("%-8s %-10s %-8s %-8s %-8s\n", "window", "instrs", "CPI", "L2 miss", "stall%")
	for i, s := range res.Samples {
		m := s.Metrics()
		instr := s.Counters.Get(counters.Instructions)
		fmt.Printf("%-8d %-10d %-8.2f %-8.3f %-8.1f\n", i, instr, m.CPI, m.L2MissRate, m.StalledPct)
	}
	fmt.Println("\nwindow metrics reflect all threads on the machine; the dip where")
	fmt.Println("counters reset marks the end of the warm-up fraction")
}
