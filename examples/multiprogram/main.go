// Multiprogram: reproduce the heart of the paper's Section 4.2 — run the
// complementary CG/FT pair (memory-bound + compute-bound) and the identical
// CG/CG and FT/FT pairs on several configurations, and show that the
// complementary mix wins, with HT on -4-1 the strongest multi-program
// performer.
package main

import (
	"fmt"
	"log"

	"xeonomp/internal/config"
	"xeonomp/internal/core"
	"xeonomp/internal/profiles"
)

func main() {
	cg, err := profiles.ByName("CG")
	if err != nil {
		log.Fatal(err)
	}
	ft, err := profiles.ByName("FT")
	if err != nil {
		log.Fatal(err)
	}

	opt, err := core.NewOptions(core.WithScale(0.25))
	if err != nil {
		log.Fatal(err)
	}

	// Serial baselines for per-program speedups.
	base := map[string]int64{}
	for _, p := range []profiles.Profile{cg, ft} {
		s, err := core.SerialBaseline(p, opt)
		if err != nil {
			log.Fatal(err)
		}
		base[p.Name] = s.WallCycles
	}

	workloads := []core.Workload{core.Pair(cg, ft), core.Pair(ft, ft), core.Pair(cg, cg)}
	archs := []config.Arch{config.CMT, config.CMPSMP, config.CMTSMP}

	fmt.Printf("%-8s", "pair")
	for _, a := range archs {
		fmt.Printf("  %-22s", a)
	}
	fmt.Println()
	for _, w := range workloads {
		fmt.Printf("%-8s", w.Name())
		for _, a := range archs {
			cfg, err := config.ByArch(a)
			if err != nil {
				log.Fatal(err)
			}
			res, err := core.Run(w, cfg, opt)
			if err != nil {
				log.Fatal(err)
			}
			cell := ""
			for gi, p := range res.Programs {
				if gi > 0 {
					cell += " / "
				}
				cell += fmt.Sprintf("%s %.2fx", p.Benchmark, core.Speedup(base[p.Benchmark], p.Cycles))
			}
			fmt.Printf("  %-22s", cell)
		}
		fmt.Println()
	}
	fmt.Println("\nspeedups are per program over its dedicated serial run")
}
